//===-- core/ExpertSelector.cpp - Online expert selection ----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/ExpertSelector.h"

#include "linalg/Vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::core;

ExpertSelector::ExpertSelector(size_t NumExperts) : NumExperts(NumExperts) {
  assert(NumExperts >= 1 && "selector needs at least one expert");
}

ExpertSelector::~ExpertSelector() = default;

size_t ExpertSelector::winnerOf(const Vec &Errors) {
  return winnerOfSpan(Errors.data(), Errors.size());
}

size_t ExpertSelector::winnerOfSpan(const double *Errors, size_t N) {
  assert(N > 0 && "empty error vector");
  return static_cast<size_t>(std::min_element(Errors, Errors + N) - Errors);
}

bool ExpertSelector::blendWeights(const Vec &, Vec &) { return false; }

bool ExpertSelector::isQuarantined(size_t) const { return false; }

bool ExpertSelector::allQuarantined() const { return false; }

Vec ExpertSelector::softmaxOfErrors(const Vec &Errors) {
  Vec Weights;
  softmaxOfErrorsInto(Errors.data(), Errors.size(), Weights);
  return Weights;
}

void ExpertSelector::softmaxOfErrorsInto(const double *Errors, size_t N,
                                         Vec &Weights) {
  assert(N > 0 && "empty error vector");
  // Mean and minimum in one pass: the sum accumulates in index order
  // exactly as before, and the running minimum is comparison-only, so the
  // fusion cannot change any result bit.
  double Mean = Errors[0];
  double MinError = Errors[0];
  for (size_t K = 1; K < N; ++K) {
    Mean += Errors[K];
    if (Errors[K] < MinError)
      MinError = Errors[K];
  }
  Mean /= static_cast<double>(N);
  double Tau = std::max(1e-9, 0.3 * Mean);

  Weights.resize(N);
  double Sum = 0.0;
  for (size_t K = 0; K < N; ++K) {
    Weights[K] = std::exp(-(Errors[K] - MinError) / Tau);
    Sum += Weights[K];
  }
  for (double &W : Weights)
    W /= Sum;
}

//===----------------------------------------------------------------------===//
// HyperplaneSelector
//===----------------------------------------------------------------------===//

HyperplaneSelector::HyperplaneSelector(size_t NumExperts, FeatureScaler Scaler,
                                       double LearningRate)
    : ExpertSelector(NumExperts), Scaler(std::move(Scaler)),
      LearningRate(LearningRate) {
  assert(LearningRate > 0.0 && LearningRate <= 1.0 && "invalid learning rate");
  initBoundaries();
}

void HyperplaneSelector::initBoundaries() {
  // "We initially partition the space evenly": the norm of a standardised
  // d-vector concentrates around sqrt(d), so spread the K regions across
  // [0, 2 sqrt(d)].
  Boundaries.assign(NumExperts > 0 ? NumExperts - 1 : 0, 0.0);
  double Span = 2.0 * std::sqrt(static_cast<double>(Scaler.dimension()));
  for (size_t I = 0; I + 1 < NumExperts; ++I)
    Boundaries[I] = Span * static_cast<double>(I + 1) /
                    static_cast<double>(NumExperts);
}

double HyperplaneSelector::project(const Vec &Features) {
  Scaler.transformInto(Features, ScratchStd);
  return norm2(ScratchStd);
}

size_t HyperplaneSelector::select(const Vec &Features) {
  double S = project(Features);
  // Region k is (Boundaries[k-1], Boundaries[k]]; the last region is open.
  for (size_t K = 0; K + 1 < NumExperts; ++K)
    if (S <= Boundaries[K])
      return K;
  return NumExperts - 1;
}

void HyperplaneSelector::update(const Vec &Features, const Vec &Errors) {
  assert(Errors.size() == NumExperts && "error vector arity mismatch");
  size_t BestExpert = winnerOf(Errors);
  size_t Predicted = select(Features);
  if (Predicted == BestExpert)
    return;

  // Move the boundary between the predicted and correct regions toward the
  // misclassified point so it lands on the correct side next time.
  double S = project(Features);
  if (BestExpert < Predicted) {
    // The point should be in a lower region: raise the boundary below the
    // predicted region above S.
    size_t B = Predicted - 1;
    Boundaries[B] += LearningRate * (S - Boundaries[B]) + 1e-6;
  } else {
    // The point should be in a higher region: push the boundary above the
    // predicted region below S.
    size_t B = Predicted;
    Boundaries[B] += LearningRate * (S - Boundaries[B]) - 1e-6;
  }
  // Keep boundaries ordered.
  for (size_t I = 1; I < Boundaries.size(); ++I)
    Boundaries[I] = std::max(Boundaries[I], Boundaries[I - 1]);
}

void HyperplaneSelector::reset() { initBoundaries(); }

std::unique_ptr<ExpertSelector> HyperplaneSelector::clone() const {
  return std::make_unique<HyperplaneSelector>(NumExperts, Scaler,
                                              LearningRate);
}

const std::string &HyperplaneSelector::name() const {
  static const std::string Name = "hyperplane";
  return Name;
}

//===----------------------------------------------------------------------===//
// PerceptronSelector
//===----------------------------------------------------------------------===//

PerceptronSelector::PerceptronSelector(size_t NumExperts, FeatureScaler Scaler,
                                       double LearningRate)
    : ExpertSelector(NumExperts), Scaler(std::move(Scaler)),
      LearningRate(LearningRate) {
  assert(LearningRate > 0.0 && "invalid learning rate");
  reset();
}

void PerceptronSelector::augmentedInto(const Vec &Features, Vec &X) const {
  // Standardised features with a trailing bias term; same values as
  // Scaler.transform + push_back(1.0), built into a reused buffer.
  size_t D = Scaler.dimension();
  assert(Features.size() == D && "scaler dimension mismatch");
  const Vec &Means = Scaler.means();
  const Vec &Scales = Scaler.scales();
  X.resize(D + 1);
  for (size_t I = 0; I < D; ++I)
    X[I] = (Features[I] - Means[I]) / Scales[I];
  X[D] = 1.0;
}

size_t PerceptronSelector::select(const Vec &Features) {
  if (!Trained) {
    // Before any supervision, fall back to the expert with the most recent
    // wins (all equal initially, so expert 0 — the even initial partition
    // is refined as soon as updates arrive).
    return static_cast<size_t>(
        std::max_element(RecentWins.begin(), RecentWins.end()) -
        RecentWins.begin());
  }
  augmentedInto(Features, ScratchX);
  // One gemv over the flat weight rows scores every expert; each row
  // accumulates like dot(), so the scores match the per-row dots bitwise.
  gemv(FlatWeights, NumExperts, ScratchX.size(), ScratchX, ScratchScores);
  size_t Best = 0;
  double BestScore = ScratchScores[0];
  for (size_t K = 1; K < NumExperts; ++K) {
    double Score = ScratchScores[K];
    if (Score > BestScore) {
      BestScore = Score;
      Best = K;
    }
  }
  return Best;
}

void PerceptronSelector::update(const Vec &Features, const Vec &Errors) {
  assert(Errors.size() == NumExperts && "error vector arity mismatch");
  size_t BestExpert = winnerOf(Errors);
  for (size_t K = 0; K < NumExperts; ++K)
    RecentWins[K] = 0.95 * RecentWins[K] + (K == BestExpert ? 0.05 : 0.0);

  size_t Predicted = select(Features);
  Trained = true;
  if (Predicted == BestExpert)
    return;

  // Standard multiclass perceptron step, applied to the flat rows.
  augmentedInto(Features, ScratchX);
  size_t Stride = ScratchX.size();
  axpySpan(FlatWeights.data() + BestExpert * Stride, LearningRate,
           ScratchX.data(), Stride);
  axpySpan(FlatWeights.data() + Predicted * Stride, -LearningRate,
           ScratchX.data(), Stride);
}

void PerceptronSelector::reset() {
  FlatWeights.assign(NumExperts * (Scaler.dimension() + 1), 0.0);
  RecentWins.assign(NumExperts, 1.0 / static_cast<double>(NumExperts));
  Trained = false;
}

std::unique_ptr<ExpertSelector> PerceptronSelector::clone() const {
  return std::make_unique<PerceptronSelector>(NumExperts, Scaler,
                                              LearningRate);
}

const std::string &PerceptronSelector::name() const {
  static const std::string Name = "perceptron";
  return Name;
}

//===----------------------------------------------------------------------===//
// AccuracySelector
//===----------------------------------------------------------------------===//

AccuracySelector::AccuracySelector(size_t NumExperts, double Alpha)
    : ExpertSelector(NumExperts), Alpha(Alpha) {
  assert(Alpha > 0.0 && Alpha <= 1.0 && "invalid EMA step");
  reset();
}

size_t AccuracySelector::select(const Vec &) {
  return winnerOf(ErrorEma);
}

void AccuracySelector::update(const Vec &, const Vec &Errors) {
  assert(Errors.size() == NumExperts && "error vector arity mismatch");
  if (!Trained) {
    ErrorEma = Errors;
    Trained = true;
    return;
  }
  for (size_t K = 0; K < NumExperts; ++K)
    ErrorEma[K] += Alpha * (Errors[K] - ErrorEma[K]);
}

bool AccuracySelector::blendWeights(const Vec &, Vec &Weights) {
  if (!Trained)
    return false;
  softmaxOfErrorsInto(ErrorEma.data(), ErrorEma.size(), Weights);
  return true;
}

void AccuracySelector::reset() {
  ErrorEma.assign(NumExperts, 0.0);
  Trained = false;
}

std::unique_ptr<ExpertSelector> AccuracySelector::clone() const {
  return std::make_unique<AccuracySelector>(NumExperts, Alpha);
}

const std::string &AccuracySelector::name() const {
  static const std::string Name = "accuracy";
  return Name;
}

//===----------------------------------------------------------------------===//
// BinnedAccuracySelector
//===----------------------------------------------------------------------===//

BinnedAccuracySelector::BinnedAccuracySelector(size_t NumExperts,
                                               FeatureScaler Scaler,
                                               size_t NumBins, double Alpha)
    : ExpertSelector(NumExperts), Scaler(std::move(Scaler)), NumBins(NumBins),
      Alpha(Alpha) {
  assert(NumBins >= 1 && "need at least one bin");
  assert(Alpha > 0.0 && Alpha <= 1.0 && "invalid EMA step");
  reset();
}

size_t BinnedAccuracySelector::binOf(const Vec &Features) {
  // The norm of a standardised d-vector concentrates around sqrt(d); map
  // [0, 2 sqrt(d)) onto the bins.
  double Span = 2.0 * std::sqrt(static_cast<double>(Scaler.dimension()));
  Scaler.transformInto(Features, ScratchStd);
  double S = norm2(ScratchStd);
  auto Bin = static_cast<size_t>(S / Span * static_cast<double>(NumBins));
  return std::min(Bin, NumBins - 1);
}

size_t BinnedAccuracySelector::select(const Vec &Features) {
  if (!Trained)
    return 0;
  size_t Bin = binOf(Features);
  return winnerOfSpan(BinTouched[Bin] ? FlatBinErrors.data() + Bin * NumExperts
                                      : GlobalErrors.data(),
                      NumExperts);
}

void BinnedAccuracySelector::update(const Vec &Features, const Vec &Errors) {
  assert(Errors.size() == NumExperts && "error vector arity mismatch");
  size_t Bin = binOf(Features);
  if (!Trained) {
    GlobalErrors = Errors;
    Trained = true;
  } else {
    for (size_t K = 0; K < NumExperts; ++K)
      GlobalErrors[K] += Alpha * (Errors[K] - GlobalErrors[K]);
  }
  double *Row = FlatBinErrors.data() + Bin * NumExperts;
  if (!BinTouched[Bin]) {
    for (size_t K = 0; K < NumExperts; ++K)
      Row[K] = Errors[K];
    BinTouched[Bin] = true;
    return;
  }
  for (size_t K = 0; K < NumExperts; ++K)
    Row[K] += Alpha * (Errors[K] - Row[K]);
}

bool BinnedAccuracySelector::blendWeights(const Vec &Features, Vec &Weights) {
  if (!Trained)
    return false;
  size_t Bin = binOf(Features);
  softmaxOfErrorsInto(BinTouched[Bin] ? FlatBinErrors.data() + Bin * NumExperts
                                      : GlobalErrors.data(),
                      NumExperts, Weights);
  return true;
}

void BinnedAccuracySelector::reset() {
  FlatBinErrors.assign(NumBins * NumExperts, 0.0);
  BinTouched.assign(NumBins, false);
  GlobalErrors.assign(NumExperts, 0.0);
  Trained = false;
}

std::unique_ptr<ExpertSelector> BinnedAccuracySelector::clone() const {
  return std::make_unique<BinnedAccuracySelector>(NumExperts, Scaler, NumBins,
                                                  Alpha);
}

const std::string &BinnedAccuracySelector::name() const {
  static const std::string Name = "binned-accuracy";
  return Name;
}

//===----------------------------------------------------------------------===//
// RegimeSelector
//===----------------------------------------------------------------------===//

RegimeSelector::RegimeSelector(std::vector<int> RegimeTags, double Alpha)
    : ExpertSelector(RegimeTags.size()), RegimeTags(std::move(RegimeTags)),
      Alpha(Alpha) {
  assert(Alpha > 0.0 && Alpha <= 1.0 && "invalid EMA step");
  reset();
}

bool RegimeSelector::contended(const Vec &Features) {
  // f6 (runq-sz) vs f5 (processors); see policy::featureNames().
  assert(Features.size() >= 6 && "feature vector too short");
  return Features[5] > Features[4];
}

void RegimeSelector::candidatesInto(const Vec &Features,
                                    std::vector<size_t> &Matching) const {
  int Want = contended(Features) ? 1 : 0;
  Matching.clear();
  for (size_t K = 0; K < NumExperts; ++K)
    if (RegimeTags[K] == Want || RegimeTags[K] == -1)
      // medley-lint: allow(hotpath-escape) — amortized: caller-scratch capacity sticks at NumExperts.
      Matching.push_back(K);
  if (Matching.empty())
    for (size_t K = 0; K < NumExperts; ++K)
      // medley-lint: allow(hotpath-escape) — amortized, same scratch.
      Matching.push_back(K);
}

size_t RegimeSelector::select(const Vec &Features) {
  candidatesInto(Features, ScratchMatching);
  size_t Best = ScratchMatching.front();
  for (size_t K : ScratchMatching)
    if (ErrorEma[K] < ErrorEma[Best])
      Best = K;
  return Best;
}

void RegimeSelector::update(const Vec &, const Vec &Errors) {
  assert(Errors.size() == NumExperts && "error vector arity mismatch");
  if (!Trained) {
    ErrorEma = Errors;
    Trained = true;
    return;
  }
  for (size_t K = 0; K < NumExperts; ++K)
    ErrorEma[K] += Alpha * (Errors[K] - ErrorEma[K]);
}

bool RegimeSelector::blendWeights(const Vec &Features, Vec &Weights) {
  if (!Trained)
    return false;
  candidatesInto(Features, ScratchMatching);
  ScratchErrors.clear();
  for (size_t K : ScratchMatching)
    // medley-lint: allow(hotpath-escape) — amortized sticky scratch.
    ScratchErrors.push_back(ErrorEma[K]);
  softmaxOfErrorsInto(ScratchErrors.data(), ScratchErrors.size(),
                      ScratchInner);
  Weights.assign(NumExperts, 0.0);
  for (size_t I = 0; I < ScratchMatching.size(); ++I)
    Weights[ScratchMatching[I]] = ScratchInner[I];
  return true;
}

void RegimeSelector::reset() {
  ErrorEma.assign(NumExperts, 0.0);
  Trained = false;
}

std::unique_ptr<ExpertSelector> RegimeSelector::clone() const {
  return std::make_unique<RegimeSelector>(RegimeTags, Alpha);
}

const std::string &RegimeSelector::name() const {
  static const std::string Name = "regime";
  return Name;
}

//===----------------------------------------------------------------------===//
// RandomSelector
//===----------------------------------------------------------------------===//

RandomSelector::RandomSelector(size_t NumExperts, uint64_t Seed)
    : ExpertSelector(NumExperts), Seed(Seed), Generator(Seed) {}

size_t RandomSelector::select(const Vec &) {
  return static_cast<size_t>(
      Generator.uniformInt(0, static_cast<int64_t>(NumExperts) - 1));
}

void RandomSelector::update(const Vec &, const Vec &) {}

void RandomSelector::reset() { Generator = Rng(Seed); }

std::unique_ptr<ExpertSelector> RandomSelector::clone() const {
  return std::make_unique<RandomSelector>(NumExperts, Seed);
}

const std::string &RandomSelector::name() const {
  static const std::string Name = "random";
  return Name;
}

//===----------------------------------------------------------------------===//
// QuarantineSelector
//===----------------------------------------------------------------------===//

QuarantineSelector::QuarantineSelector(std::unique_ptr<ExpertSelector> Inner,
                                       QuarantineOptions Options,
                                       support::FaultStats *Stats)
    : ExpertSelector(Inner->numExperts()), Inner(std::move(Inner)),
      Options(Options), Stats(Stats),
      Name("quarantine:" + this->Inner->name()) {
  assert(Options.DivergenceFactor > 1.0 && "divergence factor must exceed 1");
  assert(Options.Strikes >= 1 && "need at least one strike");
  assert(Options.BackoffUpdates >= 1 && "backoff must be positive");
  States.assign(NumExperts, ExpertState());
}

bool QuarantineSelector::isQuarantined(size_t Expert) const {
  assert(Expert < NumExperts && "expert index out of range");
  return States[Expert].QuarantineRemaining > 0;
}

bool QuarantineSelector::allQuarantined() const {
  for (const ExpertState &S : States)
    if (S.QuarantineRemaining == 0)
      return false;
  return true;
}

size_t QuarantineSelector::healthyCount() const {
  size_t Healthy = 0;
  for (const ExpertState &S : States)
    if (S.QuarantineRemaining == 0)
      ++Healthy;
  return Healthy;
}

size_t QuarantineSelector::bestHealthy() const {
  size_t Best = SIZE_MAX;
  for (size_t K = 0; K < NumExperts; ++K) {
    if (States[K].QuarantineRemaining > 0)
      continue;
    if (Best == SIZE_MAX || States[K].ErrorEma < States[Best].ErrorEma)
      Best = K;
  }
  return Best;
}

size_t QuarantineSelector::select(const Vec &Features) {
  size_t Chosen = Inner->select(Features);
  if (!isQuarantined(Chosen))
    return Chosen;
  // The inner model wants a quarantined expert: redirect to the healthy
  // expert with the best recent error. With everything quarantined there
  // is nothing to redirect to; the mixture detects that via
  // allQuarantined() and falls back to default behaviour.
  size_t Fallback = bestHealthy();
  return Fallback == SIZE_MAX ? Chosen : Fallback;
}

void QuarantineSelector::update(const Vec &Features, const Vec &Errors) {
  assert(Errors.size() == NumExperts && "error vector arity mismatch");

  // Median of the finite errors — the yardstick a diverging expert is
  // measured against. A wholly non-finite update strikes everyone.
  ScratchFinite.clear();
  for (double E : Errors)
    if (std::isfinite(E))
      // medley-lint: allow(hotpath-escape) — amortized sticky scratch.
      ScratchFinite.push_back(E);
  double Median = 0.0;
  if (!ScratchFinite.empty()) {
    std::sort(ScratchFinite.begin(), ScratchFinite.end());
    Median = ScratchFinite[ScratchFinite.size() / 2];
  }
  double StrikeThreshold =
      std::max(Options.DivergenceFactor * Median, Options.AbsoluteErrorFloor);
  // Non-finite errors reach the inner selector as a large finite penalty
  // so its own EMA/weights stay finite.
  double Penalty =
      2.0 * std::max(ScratchFinite.empty() ? 0.0 : ScratchFinite.back(),
                     StrikeThreshold);

  Vec &Sanitized = ScratchSanitized;
  Sanitized = Errors;
  for (size_t K = 0; K < NumExperts; ++K) {
    ExpertState &S = States[K];
    bool Diverged = !std::isfinite(Errors[K]) || Errors[K] > StrikeThreshold;
    if (!std::isfinite(Errors[K]))
      Sanitized[K] = Penalty;

    double Observed = Sanitized[K];
    S.ErrorEma = S.Seen ? S.ErrorEma + 0.3 * (Observed - S.ErrorEma)
                        : Observed;
    S.Seen = true;

    if (S.QuarantineRemaining > 0) {
      // Serving a sentence: count down toward timed re-admission.
      if (--S.QuarantineRemaining == 0) {
        S.ConsecutiveStrikes = 0;
        if (Stats)
          ++Stats->Readmissions;
      }
      continue;
    }

    if (!Diverged) {
      S.ConsecutiveStrikes = 0;
      continue;
    }
    if (++S.ConsecutiveStrikes < Options.Strikes)
      continue;

    // Three strikes (by default): quarantine with exponential backoff.
    if (S.NextBackoff == 0)
      S.NextBackoff = Options.BackoffUpdates;
    S.QuarantineRemaining = S.NextBackoff;
    S.NextBackoff = std::min(2 * S.NextBackoff, Options.MaxBackoffUpdates);
    S.ConsecutiveStrikes = 0;
    if (Stats)
      ++Stats->Quarantines;
  }

  Inner->update(Features, Sanitized);
}

bool QuarantineSelector::blendWeights(const Vec &Features, Vec &Weights) {
  if (!Inner->blendWeights(Features, Weights))
    return false;
  // Mask out quarantined experts and renormalise what remains.
  double Sum = 0.0;
  for (size_t K = 0; K < NumExperts; ++K) {
    if (isQuarantined(K))
      Weights[K] = 0.0;
    Sum += Weights[K];
  }
  if (Sum <= 0.0)
    return false; // Everything quarantined: no usable blend.
  for (double &W : Weights)
    W /= Sum;
  return true;
}

void QuarantineSelector::reset() {
  Inner->reset();
  States.assign(NumExperts, ExpertState());
}

void QuarantineSelector::readmitAll() {
  // Rollback re-admission (DESIGN.md §14.5): strikes, quarantines and
  // backoff accumulated under a bad snapshot must not leak into the next
  // one — an expert that only diverged because its models were bad is
  // healthy again the instant the pre-swap snapshot is restored. The
  // inner selector is deliberately untouched: its learned partition is
  // snapshot-independent gating state and survives the swap.
  for (ExpertState &S : States) {
    if (S.QuarantineRemaining > 0 && Stats)
      ++Stats->Readmissions;
    S = ExpertState();
  }
}

std::unique_ptr<ExpertSelector> QuarantineSelector::clone() const {
  // Clones are per-run copies handed out by factories; they do not share
  // the (non-thread-safe) stats sink.
  return std::make_unique<QuarantineSelector>(Inner->clone(), Options,
                                              nullptr);
}

const std::string &QuarantineSelector::name() const { return Name; }

//===----------------------------------------------------------------------===//
// FixedSelector
//===----------------------------------------------------------------------===//

FixedSelector::FixedSelector(size_t NumExperts, size_t Index)
    : ExpertSelector(NumExperts), Index(Index) {
  assert(Index < NumExperts && "fixed expert index out of range");
}

size_t FixedSelector::select(const Vec &) { return Index; }

void FixedSelector::update(const Vec &, const Vec &) {}

std::unique_ptr<ExpertSelector> FixedSelector::clone() const {
  return std::make_unique<FixedSelector>(NumExperts, Index);
}

const std::string &FixedSelector::name() const {
  static const std::string Name = "fixed";
  return Name;
}
