//===-- core/MoeStats.h - Mixture bookkeeping -------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulated statistics of mixture-of-experts runs, backing the analysis
/// figures: per-expert environment-prediction accuracy (Fig 15a), expert
/// selection frequency (Fig 15b) and thread-number distributions (Fig 17).
/// A MoeStats instance can be shared across all policy instances of a
/// scenario to aggregate over runs.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_MOESTATS_H
#define MEDLEY_CORE_MOESTATS_H

#include "support/Histogram.h"

#include <cstddef>
#include <vector>

namespace medley::core {

/// Aggregated mixture behaviour over any number of runs.
struct MoeStats {
  explicit MoeStats(size_t NumExperts);

  size_t numExperts() const { return SelectionCounts.size(); }

  /// How often each expert was chosen by the selector.
  std::vector<size_t> SelectionCounts;

  /// Per-expert environment predictions judged one step later:
  /// within-tolerance counts over totals.
  std::vector<size_t> EnvAccurate;
  std::vector<size_t> EnvTotal;

  /// Same bookkeeping for the expert the mixture actually chose.
  size_t MixtureEnvAccurate = 0;
  size_t MixtureEnvTotal = 0;

  /// Thread numbers each expert *would* have chosen at every decision, and
  /// what the mixture chose (Fig 17).
  std::vector<Histogram> ExpertThreads;
  Histogram MixtureThreads;

  /// Selection frequency of expert \p K in [0, 1].
  double selectionFrequency(size_t K) const;

  /// Environment-prediction accuracy of expert \p K in [0, 1].
  double envAccuracy(size_t K) const;

  /// Accuracy of the mixture's chosen expert in [0, 1].
  double mixtureEnvAccuracy() const;

  void clear();
};

} // namespace medley::core

#endif // MEDLEY_CORE_MOESTATS_H
