//===-- ml/CrossValidation.cpp - Leave-one-group-out CV -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/CrossValidation.h"

#include <cmath>

using namespace medley;

double medley::modelAccuracy(const LinearModel &Model, const Dataset &Data,
                             AccuracyOptions Options) {
  if (Data.empty())
    return 0.0;
  size_t Hits = 0;
  for (const Sample &S : Data.samples()) {
    double Pred = Model.predict(S.X);
    double Tolerance = std::max(Options.AbsoluteTolerance,
                                Options.RelativeTolerance * std::fabs(S.Y));
    if (std::fabs(Pred - S.Y) <= Tolerance)
      ++Hits;
  }
  return static_cast<double>(Hits) / static_cast<double>(Data.size());
}

double medley::modelMae(const LinearModel &Model, const Dataset &Data) {
  if (Data.empty())
    return 0.0;
  double Sum = 0.0;
  for (const Sample &S : Data.samples())
    Sum += std::fabs(Model.predict(S.X) - S.Y);
  return Sum / static_cast<double>(Data.size());
}

CrossValidationResult
medley::leaveOneGroupOut(const Dataset &Data, LinearModelOptions ModelOptions,
                         AccuracyOptions Accuracy) {
  CrossValidationResult Result;
  double AccuracySum = 0.0, MaeSum = 0.0;

  for (const std::string &Group : Data.groups()) {
    auto [Held, Train] = Data.splitByGroup(Group);
    if (Train.empty() || Held.empty())
      continue;
    std::optional<LinearModel> Model =
        trainLinearModel(Train, "cv:" + Group, ModelOptions);
    if (!Model)
      continue;
    AccuracySum += modelAccuracy(*Model, Held, Accuracy) *
                   static_cast<double>(Held.size());
    MaeSum += modelMae(*Model, Held) * static_cast<double>(Held.size());
    ++Result.NumFolds;
    Result.NumSamples += Held.size();
  }

  if (Result.NumSamples != 0) {
    Result.Accuracy = AccuracySum / static_cast<double>(Result.NumSamples);
    Result.Mae = MaeSum / static_cast<double>(Result.NumSamples);
  }
  return Result;
}
