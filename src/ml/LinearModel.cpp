//===-- ml/LinearModel.cpp - Deployable linear predictor ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/LinearModel.h"

using namespace medley;

LinearModel::LinearModel(FeatureScaler Scaler, LinearFit Fit, std::string Name)
    : Scaler(std::move(Scaler)), Fit(std::move(Fit)), Name(std::move(Name)) {}

double LinearModel::predict(const Vec &X) const {
  return Fit.predict(Scaler.transform(X));
}

std::optional<LinearModel>
medley::trainLinearModel(const Dataset &Data, const std::string &Name,
                         LinearModelOptions Options) {
  if (Data.empty())
    return std::nullopt;

  std::vector<Vec> X = Data.designMatrix();
  FeatureScaler Scaler;
  if (Options.SharedScaler) {
    assert(Options.SharedScaler->dimension() == Data.numFeatures() &&
           "shared scaler arity mismatch");
    Scaler = *Options.SharedScaler;
  } else if (Options.Standardize) {
    Scaler = FeatureScaler::fit(X);
  } else {
    Scaler = FeatureScaler::identity(Data.numFeatures());
  }
  std::vector<Vec> Scaled = Scaler.transformAll(X);

  LeastSquaresOptions LsOptions;
  LsOptions.Ridge = Options.Ridge;
  std::optional<LinearFit> Fit =
      fitLeastSquares(Scaled, Data.targets(), LsOptions);
  if (!Fit)
    return std::nullopt;
  return LinearModel(std::move(Scaler), std::move(*Fit), Name);
}
