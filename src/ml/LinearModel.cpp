//===-- ml/LinearModel.cpp - Deployable linear predictor ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/LinearModel.h"

#include <cassert>

using namespace medley;

LinearModel::LinearModel(FeatureScaler Scaler, LinearFit Fit, std::string Name)
    : Scaler(std::move(Scaler)), Fit(std::move(Fit)), Name(std::move(Name)) {}

double LinearModel::predict(const Vec &X) const {
  // Fused standardise-and-score: element values and accumulation order are
  // exactly those of Fit.predict(Scaler.transform(X)), so the result is
  // bit-identical — without materialising the standardised copy. This is
  // the innermost call of every expert prediction, so it must not allocate.
  const Vec &Means = Scaler.means();
  const Vec &Scales = Scaler.scales();
  assert(X.size() == Means.size() && "scaler dimension mismatch");
  assert(Fit.Weights.size() == X.size() && "fit dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < X.size(); ++I)
    Sum += Fit.Weights[I] * ((X[I] - Means[I]) / Scales[I]);
  return Sum + Fit.Intercept;
}

double LinearModel::predictStandardized(const Vec &Z) const {
  assert(Z.size() == Fit.Weights.size() && "fit dimension mismatch");
  // Same accumulation order as the fused predict() loop, so the result is
  // bit-identical given bitwise-equal standardised inputs.
  double Sum = 0.0;
  for (size_t I = 0; I < Z.size(); ++I)
    Sum += Fit.Weights[I] * Z[I];
  return Sum + Fit.Intercept;
}

void LinearModel::predictMany(const LinearModel *const *Models,
                              size_t NumModels, const Vec &X, double *Out) {
  if (NumModels == 4) {
    // The standard mixture width: four independent accumulator chains kept
    // in registers. Each chain performs the same operations in the same
    // order as a lone predict() call.
    const LinearModel &A = *Models[0], &B = *Models[1], &C = *Models[2],
                      &D = *Models[3];
    assert(X.size() == A.Scaler.dimension() &&
           X.size() == B.Scaler.dimension() &&
           X.size() == C.Scaler.dimension() &&
           X.size() == D.Scaler.dimension() && "scaler dimension mismatch");
    const double *WA = A.Fit.Weights.data(), *MA = A.Scaler.means().data(),
                 *SA = A.Scaler.scales().data();
    const double *WB = B.Fit.Weights.data(), *MB = B.Scaler.means().data(),
                 *SB = B.Scaler.scales().data();
    const double *WC = C.Fit.Weights.data(), *MC = C.Scaler.means().data(),
                 *SC = C.Scaler.scales().data();
    const double *WD = D.Fit.Weights.data(), *MD = D.Scaler.means().data(),
                 *SD = D.Scaler.scales().data();
    double SumA = 0.0, SumB = 0.0, SumC = 0.0, SumD = 0.0;
    for (size_t I = 0; I < X.size(); ++I) {
      double XI = X[I];
      SumA += WA[I] * ((XI - MA[I]) / SA[I]);
      SumB += WB[I] * ((XI - MB[I]) / SB[I]);
      SumC += WC[I] * ((XI - MC[I]) / SC[I]);
      SumD += WD[I] * ((XI - MD[I]) / SD[I]);
    }
    Out[0] = SumA + A.Fit.Intercept;
    Out[1] = SumB + B.Fit.Intercept;
    Out[2] = SumC + C.Fit.Intercept;
    Out[3] = SumD + D.Fit.Intercept;
    return;
  }
  for (size_t K = 0; K < NumModels; ++K)
    Out[K] = Models[K]->predict(X);
}

void LinearModel::predictStandardizedMany(const LinearModel *const *Models,
                                          size_t NumModels, const Vec &Z,
                                          double *Out) {
  if (NumModels == 4) {
    const LinearModel &A = *Models[0], &B = *Models[1], &C = *Models[2],
                      &D = *Models[3];
    assert(Z.size() == A.Fit.Weights.size() &&
           Z.size() == B.Fit.Weights.size() &&
           Z.size() == C.Fit.Weights.size() &&
           Z.size() == D.Fit.Weights.size() && "fit dimension mismatch");
    const double *WA = A.Fit.Weights.data(), *WB = B.Fit.Weights.data(),
                 *WC = C.Fit.Weights.data(), *WD = D.Fit.Weights.data();
    double SumA = 0.0, SumB = 0.0, SumC = 0.0, SumD = 0.0;
    for (size_t I = 0; I < Z.size(); ++I) {
      double ZI = Z[I];
      SumA += WA[I] * ZI;
      SumB += WB[I] * ZI;
      SumC += WC[I] * ZI;
      SumD += WD[I] * ZI;
    }
    Out[0] = SumA + A.Fit.Intercept;
    Out[1] = SumB + B.Fit.Intercept;
    Out[2] = SumC + C.Fit.Intercept;
    Out[3] = SumD + D.Fit.Intercept;
    return;
  }
  for (size_t K = 0; K < NumModels; ++K)
    Out[K] = Models[K]->predictStandardized(Z);
}

std::optional<LinearModel>
medley::trainLinearModel(const Dataset &Data, const std::string &Name,
                         LinearModelOptions Options) {
  if (Data.empty())
    return std::nullopt;

  std::vector<Vec> X = Data.designMatrix();
  FeatureScaler Scaler;
  if (Options.SharedScaler) {
    assert(Options.SharedScaler->dimension() == Data.numFeatures() &&
           "shared scaler arity mismatch");
    Scaler = *Options.SharedScaler;
  } else if (Options.Standardize) {
    Scaler = FeatureScaler::fit(X);
  } else {
    Scaler = FeatureScaler::identity(Data.numFeatures());
  }
  std::vector<Vec> Scaled = Scaler.transformAll(X);

  LeastSquaresOptions LsOptions;
  LsOptions.Ridge = Options.Ridge;
  std::optional<LinearFit> Fit =
      fitLeastSquares(Scaled, Data.targets(), LsOptions);
  if (!Fit)
    return std::nullopt;
  return LinearModel(std::move(Scaler), std::move(*Fit), Name);
}
