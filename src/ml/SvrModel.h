//===-- ml/SvrModel.h - Linear epsilon-SVR ----------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear support-vector regression with an epsilon-insensitive loss,
/// trained by deterministic averaged subgradient descent. This is the
/// "SVMs trained on the same data" of the paper's Section 9: a different
/// loss (epsilon-insensitive rather than squared) over the same features
/// and corpus, pluggable into the mixture as another expert type.
///
/// Objective (standardised features x, target y):
///   min_w  lambda/2 ||w||^2 + 1/n sum_i max(0, |w.x_i + b - y_i| - eps)
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_ML_SVRMODEL_H
#define MEDLEY_ML_SVRMODEL_H

#include "ml/Dataset.h"
#include "ml/FeatureScaler.h"

#include <optional>

namespace medley {

/// Options for trainSvrModel.
struct SvrOptions {
  double Epsilon = 1.0;    ///< Insensitive-tube half width (thread counts).
  double Lambda = 1e-4;    ///< L2 regularisation strength.
  size_t Epochs = 30;      ///< Full passes over the data.
  double LearningRate = 0.1;
  uint64_t Seed = 0x5A2;   ///< Shuffling seed (training is deterministic).
};

/// A trained linear epsilon-SVR.
class SvrModel {
public:
  SvrModel() = default;

  double predict(const Vec &X) const;

  /// Weights in standardised feature space.
  const Vec &weights() const { return Weights; }
  double intercept() const { return Intercept; }
  const std::string &name() const { return Name; }
  size_t dimension() const { return Scaler.dimension(); }

  /// Fraction of training points outside the epsilon tube (the "support
  /// vectors" of the linear formulation).
  double supportFraction() const { return SupportFraction; }

private:
  friend std::optional<SvrModel> trainSvrModel(const Dataset &Data,
                                               const std::string &Name,
                                               SvrOptions Options);

  FeatureScaler Scaler;
  Vec Weights;
  double Intercept = 0.0;
  double SupportFraction = 0.0;
  std::string Name;
};

/// Trains a linear epsilon-SVR over \p Data (std::nullopt when empty).
std::optional<SvrModel> trainSvrModel(const Dataset &Data,
                                      const std::string &Name,
                                      SvrOptions Options = {});

} // namespace medley

#endif // MEDLEY_ML_SVRMODEL_H
