//===-- ml/CrossValidation.h - Leave-one-group-out CV -----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leave-one-out cross-validation at program granularity (Section 5.2.3):
/// when evaluating on samples from program P, the model is retrained with
/// all of P's samples removed.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_ML_CROSSVALIDATION_H
#define MEDLEY_ML_CROSSVALIDATION_H

#include "ml/LinearModel.h"

namespace medley {

/// Accuracy definition used throughout: a prediction is "correct" when it
/// lands within \p RelativeTolerance of the label (with an absolute floor of
/// \p AbsoluteTolerance, e.g. predicting 5 threads for a 4-thread label).
struct AccuracyOptions {
  double RelativeTolerance = 0.2;
  double AbsoluteTolerance = 1.0;
};

/// Fraction of samples in \p Data that \p Model predicts within tolerance.
double modelAccuracy(const LinearModel &Model, const Dataset &Data,
                     AccuracyOptions Options = {});

/// Mean absolute prediction error of \p Model over \p Data.
double modelMae(const LinearModel &Model, const Dataset &Data);

/// Result of a cross-validation run.
struct CrossValidationResult {
  double Accuracy = 0.0; ///< Within-tolerance fraction over held-out folds.
  double Mae = 0.0;      ///< Mean absolute error over held-out folds.
  size_t NumFolds = 0;
  size_t NumSamples = 0;
};

/// Leave-one-group-out CV: for each group g, trains on Data \ g and scores
/// on g. Groups whose complement is degenerate (untrainable) are skipped.
CrossValidationResult leaveOneGroupOut(const Dataset &Data,
                                       LinearModelOptions ModelOptions = {},
                                       AccuracyOptions Accuracy = {});

} // namespace medley

#endif // MEDLEY_ML_CROSSVALIDATION_H
