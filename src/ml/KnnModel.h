//===-- ml/KnnModel.h - Instance-based (k-NN) regression --------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A k-nearest-neighbour regressor, the instance-based learning technique
/// of Long & O'Boyle (paper reference [21]) and one of the "other modeling
/// techniques" the paper's Section 9 asks to be plugged into the mixture.
/// Distances are computed in standardised feature space; the prediction is
/// the inverse-distance-weighted mean of the k nearest training targets.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_ML_KNNMODEL_H
#define MEDLEY_ML_KNNMODEL_H

#include "ml/Dataset.h"
#include "ml/FeatureScaler.h"

#include <optional>

namespace medley {

/// Options for trainKnnModel.
struct KnnOptions {
  size_t K = 15;
  /// Cap on the stored training set; larger datasets are subsampled
  /// deterministically (every size/cap-th sample) to bound query cost.
  size_t MaxStoredSamples = 2000;
};

/// Instance-based regressor: keeps (standardised) training points and
/// predicts by inverse-distance-weighted k-NN averaging.
class KnnModel {
public:
  KnnModel() = default;

  double predict(const Vec &X) const;

  size_t storedSamples() const { return Points.size(); }
  size_t k() const { return Options.K; }
  const std::string &name() const { return Name; }
  size_t dimension() const { return Scaler.dimension(); }

private:
  friend std::optional<KnnModel> trainKnnModel(const Dataset &Data,
                                               const std::string &Name,
                                               KnnOptions Options);

  FeatureScaler Scaler;
  std::vector<Vec> Points; ///< Standardised feature vectors.
  Vec Targets;
  KnnOptions Options;
  std::string Name;

  /// Per-query scratch (standardised query, distance/target pairs).
  /// Capacity sticks after the first predict, so steady-state queries
  /// on the decision path perform zero heap allocations.
  mutable Vec ScratchQuery;
  mutable std::vector<std::pair<double, double>> ScratchDist;
};

/// Builds a KnnModel over \p Data (std::nullopt when empty).
std::optional<KnnModel> trainKnnModel(const Dataset &Data,
                                      const std::string &Name,
                                      KnnOptions Options = {});

} // namespace medley

#endif // MEDLEY_ML_KNNMODEL_H
