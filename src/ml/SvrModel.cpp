//===-- ml/SvrModel.cpp - Linear epsilon-SVR ------------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/SvrModel.h"

#include "support/Random.h"

#include <cassert>
#include <cmath>

using namespace medley;

std::optional<SvrModel> medley::trainSvrModel(const Dataset &Data,
                                              const std::string &Name,
                                              SvrOptions Options) {
  if (Data.empty())
    return std::nullopt;
  assert(Options.Epsilon >= 0.0 && Options.Lambda >= 0.0 &&
         Options.Epochs >= 1 && "invalid SVR options");

  SvrModel Model;
  Model.Name = Name;
  Model.Scaler = FeatureScaler::fit(Data.designMatrix());

  size_t N = Data.size(), Dim = Data.numFeatures();
  std::vector<Vec> X;
  X.reserve(N);
  for (size_t I = 0; I < N; ++I)
    X.push_back(Model.Scaler.transform(Data.sample(I).X));
  // Centre the targets: the intercept then only has to learn the residual
  // offset, which converges far faster under subgradient steps.
  Vec Y = Data.targets();
  double MeanY = 0.0;
  for (double V : Y)
    MeanY += V;
  MeanY /= static_cast<double>(N);
  for (double &V : Y)
    V -= MeanY;

  // Averaged subgradient descent with a 1/sqrt(t) step schedule; the
  // Polyak average covers only the second half of training so early,
  // far-from-optimal iterates do not dilute it.
  Vec W(Dim, 0.0), WSum(Dim, 0.0);
  double B = 0.0, BSum = 0.0;
  size_t Steps = 0, Averaged = 0;
  const size_t TotalSteps = N * Options.Epochs;

  std::vector<size_t> Order(N);
  for (size_t I = 0; I < N; ++I)
    Order[I] = I;
  Rng Generator(Options.Seed);

  for (size_t Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    Generator.shuffle(Order);
    for (size_t I : Order) {
      ++Steps;
      double Eta =
          Options.LearningRate / std::sqrt(static_cast<double>(Steps));
      double Pred = dot(W, X[I]) + B;
      double Residual = Pred - Y[I];

      // L2 shrinkage every step, loss gradient only outside the tube.
      for (double &Wj : W)
        Wj *= 1.0 - Eta * Options.Lambda;
      if (Residual > Options.Epsilon) {
        axpy(W, -Eta, X[I]);
        B -= Eta;
      } else if (Residual < -Options.Epsilon) {
        axpy(W, Eta, X[I]);
        B += Eta;
      }
      if (Steps * 2 >= TotalSteps) {
        axpy(WSum, 1.0, W);
        BSum += B;
        ++Averaged;
      }
    }
  }

  Model.Weights = scale(WSum, 1.0 / static_cast<double>(Averaged));
  Model.Intercept = BSum / static_cast<double>(Averaged) + MeanY;

  size_t Outside = 0;
  for (size_t I = 0; I < N; ++I) {
    // Y was centred above; compare in the same frame.
    double Residual =
        dot(Model.Weights, X[I]) + (Model.Intercept - MeanY) - Y[I];
    if (std::fabs(Residual) > Options.Epsilon)
      ++Outside;
  }
  Model.SupportFraction = static_cast<double>(Outside) / N;
  return Model;
}

double SvrModel::predict(const Vec &X) const {
  assert(!Weights.empty() && "querying an untrained SVR model");
  return dot(Weights, Scaler.transform(X)) + Intercept;
}
