//===-- ml/Dataset.h - Supervised training data -----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A labelled dataset of feature vectors. Each sample carries a group tag
/// (the training program's name) so that leave-one-out cross-validation can
/// hold out whole programs, exactly as Section 5.2.3 prescribes ("if we are
/// trying to predict the number of threads for program bt, we ensure that
/// bt is not part of the training set").
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_ML_DATASET_H
#define MEDLEY_ML_DATASET_H

#include "linalg/Vector.h"

#include <functional>
#include <string>
#include <vector>

namespace medley {

/// One labelled observation.
struct Sample {
  Vec X;             ///< Feature vector.
  double Y = 0.0;    ///< Regression target.
  std::string Group; ///< Origin program (cross-validation unit).
};

/// A named-column collection of samples.
class Dataset {
public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> FeatureNames);

  const std::vector<std::string> &featureNames() const { return Names; }
  size_t numFeatures() const { return Names.size(); }
  size_t size() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }

  const Sample &sample(size_t I) const { return Samples[I]; }
  const std::vector<Sample> &samples() const { return Samples; }

  /// Appends a sample; X must have numFeatures() entries.
  void add(Vec X, double Y, std::string Group = "");

  /// Returns the distinct group tags in first-seen order.
  std::vector<std::string> groups() const;

  /// Returns the subset whose samples satisfy \p Keep.
  Dataset filter(const std::function<bool(const Sample &)> &Keep) const;

  /// Returns a copy with feature column \p Index removed (feature-impact
  /// analysis retrains the model with one feature dropped).
  Dataset withoutFeature(size_t Index) const;

  /// Splits into (samples whose group == \p Group, the rest).
  std::pair<Dataset, Dataset> splitByGroup(const std::string &Group) const;

  /// Design-matrix view: all feature vectors.
  std::vector<Vec> designMatrix() const;

  /// All targets.
  Vec targets() const;

  /// Merges \p Other into this dataset; feature names must match.
  void append(const Dataset &Other);

private:
  std::vector<std::string> Names;
  std::vector<Sample> Samples;
};

} // namespace medley

#endif // MEDLEY_ML_DATASET_H
