//===-- ml/FeatureImpact.h - Drop-one-feature impact (π) --------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feature impact π (Section 5.2.2 / Figure 6): "the drop in prediction
/// accuracy of the model when this feature alone was removed from the
/// feature-set", normalised over the features of each expert.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_ML_FEATUREIMPACT_H
#define MEDLEY_ML_FEATUREIMPACT_H

#include "ml/CrossValidation.h"

namespace medley {

/// π for a single feature of one model/dataset.
struct FeatureImpact {
  std::string Name;
  double AccuracyDrop = 0.0; ///< Full-model accuracy minus drop-one accuracy.
  double Normalized = 0.0;   ///< AccuracyDrop / Σ positive drops.
};

/// Computes π for every feature of \p Data by retraining with each feature
/// removed and measuring the leave-one-group-out accuracy drop. Negative
/// drops (features whose removal helps) are clamped to zero before
/// normalisation, matching the pie-chart presentation of Figure 6.
std::vector<FeatureImpact>
computeFeatureImpacts(const Dataset &Data, LinearModelOptions ModelOptions = {},
                      AccuracyOptions Accuracy = {});

} // namespace medley

#endif // MEDLEY_ML_FEATUREIMPACT_H
