//===-- ml/FeatureScaler.cpp - Feature standardisation -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/FeatureScaler.h"

#include <cassert>
#include <cmath>

using namespace medley;

FeatureScaler FeatureScaler::identity(size_t N) {
  FeatureScaler S;
  S.Means = Vec(N, 0.0);
  S.Scales = Vec(N, 1.0);
  return S;
}

FeatureScaler FeatureScaler::fromMoments(Vec Means, Vec Scales) {
  assert(Means.size() == Scales.size() && "moment arity mismatch");
  FeatureScaler S;
  S.Means = std::move(Means);
  S.Scales = std::move(Scales);
  for ([[maybe_unused]] double Scale : S.Scales)
    assert(Scale > 0.0 && "scales must be positive");
  return S;
}

FeatureScaler FeatureScaler::fit(const std::vector<Vec> &Rows) {
  assert(!Rows.empty() && "cannot fit a scaler on an empty dataset");
  size_t N = Rows.front().size();
  FeatureScaler S;
  S.Means = Vec(N, 0.0);
  S.Scales = Vec(N, 1.0);

  for (const Vec &Row : Rows) {
    assert(Row.size() == N && "ragged rows");
    for (size_t I = 0; I < N; ++I)
      S.Means[I] += Row[I];
  }
  for (size_t I = 0; I < N; ++I)
    S.Means[I] /= static_cast<double>(Rows.size());

  Vec Var(N, 0.0);
  for (const Vec &Row : Rows)
    for (size_t I = 0; I < N; ++I) {
      double D = Row[I] - S.Means[I];
      Var[I] += D * D;
    }
  for (size_t I = 0; I < N; ++I) {
    double Std = std::sqrt(Var[I] / static_cast<double>(Rows.size()));
    S.Scales[I] = Std > 1e-9 ? Std : 1.0;
  }
  return S;
}

Vec FeatureScaler::transform(const Vec &X) const {
  Vec Out;
  transformInto(X, Out);
  return Out;
}

void FeatureScaler::transformInto(const Vec &X, Vec &Out) const {
  assert(X.size() == Means.size() && "scaler dimension mismatch");
  assert(&X != &Out && "transformInto: output must not alias the input");
  Out.resize(X.size());
  for (size_t I = 0; I < X.size(); ++I)
    Out[I] = (X[I] - Means[I]) / Scales[I];
}

std::vector<Vec> FeatureScaler::transformAll(const std::vector<Vec> &Rows) const {
  std::vector<Vec> Out;
  Out.reserve(Rows.size());
  for (const Vec &Row : Rows)
    Out.push_back(transform(Row));
  return Out;
}
