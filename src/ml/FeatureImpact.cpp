//===-- ml/FeatureImpact.cpp - Drop-one-feature impact (π) ----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/FeatureImpact.h"

#include <algorithm>

using namespace medley;

std::vector<FeatureImpact>
medley::computeFeatureImpacts(const Dataset &Data,
                              LinearModelOptions ModelOptions,
                              AccuracyOptions Accuracy) {
  std::vector<FeatureImpact> Impacts;
  if (Data.empty() || Data.numFeatures() == 0)
    return Impacts;

  double FullAccuracy =
      leaveOneGroupOut(Data, ModelOptions, Accuracy).Accuracy;

  double DropSum = 0.0;
  for (size_t F = 0; F < Data.numFeatures(); ++F) {
    Dataset Reduced = Data.withoutFeature(F);
    double ReducedAccuracy =
        leaveOneGroupOut(Reduced, ModelOptions, Accuracy).Accuracy;
    double Drop = std::max(0.0, FullAccuracy - ReducedAccuracy);
    Impacts.push_back(FeatureImpact{Data.featureNames()[F], Drop, 0.0});
    DropSum += Drop;
  }

  for (FeatureImpact &Impact : Impacts)
    Impact.Normalized = DropSum > 0.0 ? Impact.AccuracyDrop / DropSum
                                      : 1.0 / static_cast<double>(Impacts.size());
  return Impacts;
}
