//===-- ml/FeatureScaler.h - Feature standardisation ------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-feature standardisation (zero mean, unit variance). Runtime features
/// span wildly different scales (thread counts vs. load averages vs. memory
/// ratios), so models are trained in standardised space; the scaler is part
/// of the deployed model.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_ML_FEATURESCALER_H
#define MEDLEY_ML_FEATURESCALER_H

#include "linalg/Vector.h"

namespace medley {

/// Z-score scaler fit on training data and applied at inference time.
class FeatureScaler {
public:
  /// Builds an identity scaler of dimension \p N (transform is a no-op).
  static FeatureScaler identity(size_t N);

  /// Rebuilds a scaler from stored moments (deserialisation).
  static FeatureScaler fromMoments(Vec Means, Vec Scales);

  /// Fits per-feature mean and stddev over \p Rows. Features with (near)
  /// zero variance are given unit scale so they pass through centred.
  static FeatureScaler fit(const std::vector<Vec> &Rows);

  /// Standardises \p X.
  Vec transform(const Vec &X) const;

  /// Standardises \p X into \p Out without allocating (capacity reused
  /// across calls); bit-identical to transform(). Out must not alias X.
  void transformInto(const Vec &X, Vec &Out) const;

  /// Applies transform to every row.
  std::vector<Vec> transformAll(const std::vector<Vec> &Rows) const;

  size_t dimension() const { return Means.size(); }
  const Vec &means() const { return Means; }
  const Vec &scales() const { return Scales; }

private:
  Vec Means;
  Vec Scales;
};

} // namespace medley

#endif // MEDLEY_ML_FEATURESCALER_H
