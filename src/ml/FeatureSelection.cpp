//===-- ml/FeatureSelection.cpp - Information-gain ranking ----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/FeatureSelection.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;

namespace {

/// Assigns each value an equal-frequency bin id in [0, NumBins).
std::vector<size_t> discretize(const Vec &Values, size_t NumBins) {
  size_t N = Values.size();
  std::vector<size_t> Order(N);
  for (size_t I = 0; I < N; ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Values[A] < Values[B];
  });

  std::vector<size_t> Bins(N, 0);
  for (size_t Rank = 0; Rank < N; ++Rank) {
    size_t Bin = std::min(NumBins - 1, Rank * NumBins / N);
    Bins[Order[Rank]] = Bin;
  }
  // Keep ties in the same bin: equal values must not straddle a boundary.
  for (size_t Rank = 1; Rank < N; ++Rank) {
    size_t Prev = Order[Rank - 1], Cur = Order[Rank];
    if (Values[Prev] == Values[Cur])
      Bins[Cur] = Bins[Prev];
  }
  return Bins;
}

double entropy(const std::vector<size_t> &Labels, size_t NumBins) {
  std::vector<size_t> Counts(NumBins, 0);
  for (size_t L : Labels)
    ++Counts[L];
  double H = 0.0;
  double N = static_cast<double>(Labels.size());
  for (size_t C : Counts) {
    if (C == 0)
      continue;
    double P = static_cast<double>(C) / N;
    H -= P * std::log2(P);
  }
  return H;
}

} // namespace

std::vector<FeatureScore>
medley::rankFeaturesByInformationGain(const Dataset &Data,
                                      InformationGainOptions Options) {
  assert(Options.NumBins >= 2 && "need at least two bins");
  std::vector<FeatureScore> Scores;
  if (Data.empty())
    return Scores;

  std::vector<size_t> TargetBins = discretize(Data.targets(), Options.NumBins);
  double TargetEntropy = entropy(TargetBins, Options.NumBins);

  for (size_t F = 0; F < Data.numFeatures(); ++F) {
    Vec Column(Data.size());
    for (size_t I = 0; I < Data.size(); ++I)
      Column[I] = Data.sample(I).X[F];
    std::vector<size_t> FeatureBins = discretize(Column, Options.NumBins);

    // Conditional entropy H(Y | X_f) summed over feature bins.
    double Conditional = 0.0;
    for (size_t B = 0; B < Options.NumBins; ++B) {
      std::vector<size_t> Subset;
      for (size_t I = 0; I < Data.size(); ++I)
        if (FeatureBins[I] == B)
          Subset.push_back(TargetBins[I]);
      if (Subset.empty())
        continue;
      Conditional += entropy(Subset, Options.NumBins) *
                     static_cast<double>(Subset.size()) /
                     static_cast<double>(Data.size());
    }
    Scores.push_back(FeatureScore{F, Data.featureNames()[F],
                                  TargetEntropy - Conditional});
  }

  std::stable_sort(Scores.begin(), Scores.end(),
                   [](const FeatureScore &A, const FeatureScore &B) {
                     return A.Gain > B.Gain;
                   });
  return Scores;
}

std::pair<Dataset, std::vector<FeatureScore>>
medley::selectTopFeatures(const Dataset &Data, size_t K,
                          InformationGainOptions Options) {
  std::vector<FeatureScore> Ranked =
      rankFeaturesByInformationGain(Data, Options);
  if (K > Ranked.size())
    K = Ranked.size();

  std::vector<FeatureScore> Kept(Ranked.begin(), Ranked.begin() + K);
  std::stable_sort(Kept.begin(), Kept.end(),
                   [](const FeatureScore &A, const FeatureScore &B) {
                     return A.Index < B.Index;
                   });

  // Drop the unselected columns from highest index to lowest so earlier
  // indices stay valid while deleting.
  std::vector<bool> Keep(Data.numFeatures(), false);
  for (const FeatureScore &S : Kept)
    Keep[S.Index] = true;
  Dataset Reduced = Data;
  for (size_t I = Data.numFeatures(); I > 0; --I)
    if (!Keep[I - 1])
      Reduced = Reduced.withoutFeature(I - 1);
  return {Reduced, Kept};
}
