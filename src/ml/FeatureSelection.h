//===-- ml/FeatureSelection.h - Information-gain ranking --------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Information-gain feature ranking. The paper collected 134 candidate
/// features and kept the 10 with the highest information gain with respect
/// to the prediction target (Section 5.2.2); this module reproduces that
/// selection step over the simulated corpus.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_ML_FEATURESELECTION_H
#define MEDLEY_ML_FEATURESELECTION_H

#include "ml/Dataset.h"

namespace medley {

/// Per-feature information-gain score.
struct FeatureScore {
  size_t Index = 0;
  std::string Name;
  double Gain = 0.0;
};

/// Options for the discretisation used by information gain.
struct InformationGainOptions {
  /// Number of equal-frequency bins for continuous features and the target.
  size_t NumBins = 8;
};

/// Computes the information gain of each feature with respect to the
/// (discretised) target, returned sorted by descending gain.
std::vector<FeatureScore>
rankFeaturesByInformationGain(const Dataset &Data,
                              InformationGainOptions Options = {});

/// Keeps the \p K highest-gain features, returning the reduced dataset and
/// the surviving feature scores (in original column order).
std::pair<Dataset, std::vector<FeatureScore>>
selectTopFeatures(const Dataset &Data, size_t K,
                  InformationGainOptions Options = {});

} // namespace medley

#endif // MEDLEY_ML_FEATURESELECTION_H
