//===-- ml/LinearModel.h - Deployable linear predictor ----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deployable linear model: feature scaler + least-squares fit. Both of an
/// expert's models (thread predictor w and environment predictor m, paper
/// Section 4.1) are instances of this class, trained on the same data.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_ML_LINEARMODEL_H
#define MEDLEY_ML_LINEARMODEL_H

#include "linalg/LeastSquares.h"
#include "ml/Dataset.h"
#include "ml/FeatureScaler.h"

#include <optional>
#include <string>

namespace medley {

/// Options for trainLinearModel.
struct LinearModelOptions {
  double Ridge = 0.0;
  bool Standardize = true;
  /// When non-null, use this scaler instead of fitting one on the training
  /// data. Experts trained on subsets of a corpus share the corpus-wide
  /// scaler so their predictions are comparable under the same inputs.
  const FeatureScaler *SharedScaler = nullptr;
};

/// Scaler + linear fit, applied as predict(x) = w . scale(x) + β.
class LinearModel {
public:
  LinearModel() = default;
  LinearModel(FeatureScaler Scaler, LinearFit Fit, std::string Name);

  /// Predicts the target for raw (unscaled) features \p X.
  double predict(const Vec &X) const;

  /// Predicts from already-standardised features \p Z (as produced by
  /// scaler().transformInto). Bit-identical to predict(X) when Z holds the
  /// standardised values of X; callers scoring many models that share one
  /// scaler use this to standardise once per decision.
  double predictStandardized(const Vec &Z) const;

  /// Scores \p NumModels models over the same raw features into \p Out.
  /// Each model's accumulation runs in its own register chain in the exact
  /// index order of predict(), so every Out[K] is bit-identical to
  /// Models[K]->predict(X) — the interleaving only buys instruction-level
  /// parallelism across the independent chains. The mixture calls this
  /// once per decision for the per-expert environment predictions.
  static void predictMany(const LinearModel *const *Models, size_t NumModels,
                          const Vec &X, double *Out);

  /// Batch form of predictStandardized; same bit-identity guarantee.
  static void predictStandardizedMany(const LinearModel *const *Models,
                                      size_t NumModels, const Vec &Z,
                                      double *Out);

  /// Weights in standardised feature space (the paper's Table-1 entries).
  const Vec &weights() const { return Fit.Weights; }
  double intercept() const { return Fit.Intercept; }
  double trainingR2() const { return Fit.R2; }
  const std::string &name() const { return Name; }
  size_t dimension() const { return Scaler.dimension(); }
  const FeatureScaler &scaler() const { return Scaler; }

private:
  FeatureScaler Scaler;
  LinearFit Fit;
  std::string Name;
};

/// Fits a LinearModel over \p Data. Returns std::nullopt for an empty or
/// degenerate dataset.
std::optional<LinearModel> trainLinearModel(const Dataset &Data,
                                            const std::string &Name,
                                            LinearModelOptions Options = {});

} // namespace medley

#endif // MEDLEY_ML_LINEARMODEL_H
