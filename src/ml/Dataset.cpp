//===-- ml/Dataset.cpp - Supervised training data ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"

#include <algorithm>
#include <cassert>

using namespace medley;

Dataset::Dataset(std::vector<std::string> FeatureNames)
    : Names(std::move(FeatureNames)) {}

void Dataset::add(Vec X, double Y, std::string Group) {
  assert(X.size() == Names.size() && "sample arity mismatch");
  // Online learning appends one sample per observation; growth is
  // amortized O(1) and bounded by the training-window cap upstream.
  // medley-lint: allow(hotpath-escape) — inherent online-learning append.
  Samples.push_back(Sample{std::move(X), Y, std::move(Group)});
}

std::vector<std::string> Dataset::groups() const {
  std::vector<std::string> Result;
  for (const Sample &S : Samples)
    if (std::find(Result.begin(), Result.end(), S.Group) == Result.end())
      Result.push_back(S.Group);
  return Result;
}

Dataset Dataset::filter(
    const std::function<bool(const Sample &)> &Keep) const {
  Dataset Out(Names);
  for (const Sample &S : Samples)
    if (Keep(S))
      Out.Samples.push_back(S);
  return Out;
}

Dataset Dataset::withoutFeature(size_t Index) const {
  assert(Index < Names.size() && "feature index out of range");
  std::vector<std::string> NewNames;
  for (size_t I = 0; I < Names.size(); ++I)
    if (I != Index)
      NewNames.push_back(Names[I]);
  Dataset Out(std::move(NewNames));
  for (const Sample &S : Samples) {
    Vec X;
    X.reserve(S.X.size() - 1);
    for (size_t I = 0; I < S.X.size(); ++I)
      if (I != Index)
        X.push_back(S.X[I]);
    Out.Samples.push_back(Sample{std::move(X), S.Y, S.Group});
  }
  return Out;
}

std::pair<Dataset, Dataset>
Dataset::splitByGroup(const std::string &Group) const {
  Dataset In(Names), Rest(Names);
  for (const Sample &S : Samples)
    (S.Group == Group ? In : Rest).Samples.push_back(S);
  return {In, Rest};
}

std::vector<Vec> Dataset::designMatrix() const {
  std::vector<Vec> Rows;
  Rows.reserve(Samples.size());
  for (const Sample &S : Samples)
    Rows.push_back(S.X);
  return Rows;
}

Vec Dataset::targets() const {
  Vec Y;
  Y.reserve(Samples.size());
  for (const Sample &S : Samples)
    Y.push_back(S.Y);
  return Y;
}

void Dataset::append(const Dataset &Other) {
  assert(Names == Other.Names && "appending datasets with mismatched schema");
  Samples.insert(Samples.end(), Other.Samples.begin(), Other.Samples.end());
}
