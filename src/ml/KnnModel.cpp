//===-- ml/KnnModel.cpp - Instance-based (k-NN) regression ----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/KnnModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;

std::optional<KnnModel> medley::trainKnnModel(const Dataset &Data,
                                              const std::string &Name,
                                              KnnOptions Options) {
  if (Data.empty() || Options.K == 0)
    return std::nullopt;

  KnnModel Model;
  Model.Options = Options;
  Model.Name = Name;
  Model.Scaler = FeatureScaler::fit(Data.designMatrix());

  // Deterministic stride subsampling keeps queries cheap on big corpora.
  size_t Stride =
      std::max<size_t>(1, Data.size() / Options.MaxStoredSamples);
  for (size_t I = 0; I < Data.size(); I += Stride) {
    Model.Points.push_back(Model.Scaler.transform(Data.sample(I).X));
    Model.Targets.push_back(Data.sample(I).Y);
  }
  return Model;
}

double KnnModel::predict(const Vec &X) const {
  assert(!Points.empty() && "querying an untrained k-NN model");
  Scaler.transformInto(X, ScratchQuery);
  const Vec &Q = ScratchQuery;

  // Collect squared distances, then pick the k smallest. The scratch
  // capacity sticks at Points.size() after the first query.
  std::vector<std::pair<double, double>> &DistTarget = ScratchDist;
  DistTarget.clear();
  DistTarget.reserve(Points.size());
  for (size_t I = 0; I < Points.size(); ++I) {
    double D2 = 0.0;
    for (size_t J = 0; J < Q.size(); ++J) {
      double Delta = Points[I][J] - Q[J];
      D2 += Delta * Delta;
    }
    // medley-lint: allow(hotpath-escape) — amortized: reserve above pins capacity.
    DistTarget.emplace_back(D2, Targets[I]);
  }
  size_t K = std::min(Options.K, DistTarget.size());
  std::partial_sort(DistTarget.begin(), DistTarget.begin() + K,
                    DistTarget.end());

  double WeightSum = 0.0, Weighted = 0.0;
  for (size_t I = 0; I < K; ++I) {
    double W = 1.0 / (std::sqrt(DistTarget[I].first) + 1e-6);
    WeightSum += W;
    Weighted += W * DistTarget[I].second;
  }
  return Weighted / WeightSum;
}
