//===-- trace/TrainingWindow.cpp - Trace-to-training-rows reader ----------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "trace/TrainingWindow.h"

using namespace medley;
using namespace medley::trace;

TrainingWindow TrainingWindow::fromTrace(const TickTrace &Trace,
                                         const TrainingWindowOptions &Options) {
  TrainingWindow W;
  const size_t Rows = Trace.size();
  if (Rows < 2)
    return W;

  // Row i needs row i+1 for its environment target, so the usable range is
  // [Start, Rows - 1).
  size_t Start = 0;
  if (Options.Window != 0 && Rows - 1 > Options.Window)
    Start = (Rows - 1) - Options.Window;

  const size_t N = (Rows - 1) - Start;
  W.Features.reserve(N);
  W.ThreadTargets.reserve(N);
  W.EnvTargets.reserve(N);
  W.Contended.reserve(N);

  const auto &Cores = Trace.availableCores();
  const auto &Workload = Trace.workloadThreads();
  const auto &Target = Trace.targetThreads();
  const auto &EnvNorm = Trace.envNorms();

  // Seed the load-average proxies at the window's first observation so a
  // window is self-contained (same window => same rows, wherever it sat in
  // the full trace).
  double EmaShort = static_cast<double>(Workload[Start]);
  double EmaLong = EmaShort;

  for (size_t I = Start; I + 1 < Rows; ++I) {
    const double Threads = static_cast<double>(Workload[I]);
    EmaShort += Options.EmaShort * (Threads - EmaShort);
    EmaLong += Options.EmaLong * (Threads - EmaLong);

    Vec F(10);
    F[0] = Options.CodeFeatures[0]; // load/store count
    F[1] = Options.CodeFeatures[1]; // instructions
    F[2] = Options.CodeFeatures[2]; // branches
    F[3] = Threads;                 // workload threads
    F[4] = static_cast<double>(Cores[I]); // processors
    F[5] = Threads;                 // runq-sz proxy
    F[6] = EmaShort;                // ldavg-1 proxy
    F[7] = EmaLong;                 // ldavg-5 proxy
    F[8] = 0.0;                     // cached memory (no trace signal)
    F[9] = 0.0;                     // pages free list rate (no trace signal)

    W.Features.push_back(std::move(F));
    W.ThreadTargets.push_back(static_cast<double>(Target[I]));
    W.EnvTargets.push_back(EnvNorm[I + 1]);
    W.Contended.push_back(Workload[I] > Cores[I] ? 1 : 0);
  }
  return W;
}
