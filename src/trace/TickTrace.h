//===-- trace/TickTrace.h - Columnar per-tick trace -------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-tick system trace stored column-wise: one contiguous vector per
/// traced quantity instead of a vector of row structs. The tick loop
/// appends to the columns (reserved up front, so steady-state recording
/// never allocates), and the columnar binary writer (Columnar.h) can hand
/// each column to the stream as a single contiguous write. Consumers that
/// want a row materialise one on demand with operator[].
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TRACE_TICKTRACE_H
#define MEDLEY_TRACE_TICKTRACE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace medley::trace {

class ColumnarReader;

/// One materialised row of a TickTrace.
struct TracePoint {
  double Time = 0.0;
  unsigned AvailableCores = 0;
  unsigned WorkloadThreads = 0;
  unsigned TargetThreads = 0;
  double EnvNorm = 0.0;
};

/// Struct-of-arrays per-tick trace. Row order is append order (monotone
/// simulation time); all five columns always have the same length.
class TickTrace {
public:
  /// Pre-sizes every column for \p N rows so appends up to that bound
  /// never reallocate.
  void reserve(size_t N) {
    Times.reserve(N);
    Cores.reserve(N);
    Workload.reserve(N);
    Target.reserve(N);
    EnvNorm.reserve(N);
  }

  /// Appends one row across all columns.
  void append(const TracePoint &P) {
    Times.push_back(P.Time);
    Cores.push_back(P.AvailableCores);
    Workload.push_back(P.WorkloadThreads);
    Target.push_back(P.TargetThreads);
    EnvNorm.push_back(P.EnvNorm);
  }

  size_t size() const { return Times.size(); }
  bool empty() const { return Times.empty(); }

  void clear() {
    Times.clear();
    Cores.clear();
    Workload.clear();
    Target.clear();
    EnvNorm.clear();
  }

  /// Materialises row \p I.
  TracePoint operator[](size_t I) const {
    TracePoint P;
    P.Time = Times[I];
    P.AvailableCores = Cores[I];
    P.WorkloadThreads = Workload[I];
    P.TargetThreads = Target[I];
    P.EnvNorm = EnvNorm[I];
    return P;
  }

  const std::vector<double> &times() const { return Times; }
  const std::vector<uint32_t> &availableCores() const { return Cores; }
  const std::vector<uint32_t> &workloadThreads() const { return Workload; }
  const std::vector<uint32_t> &targetThreads() const { return Target; }
  const std::vector<double> &envNorms() const { return EnvNorm; }

  friend bool operator==(const TickTrace &A, const TickTrace &B) {
    return A.Times == B.Times && A.Cores == B.Cores &&
           A.Workload == B.Workload && A.Target == B.Target &&
           A.EnvNorm == B.EnvNorm;
  }
  friend bool operator!=(const TickTrace &A, const TickTrace &B) {
    return !(A == B);
  }

private:
  /// The binary reader fills the columns wholesale (one contiguous read
  /// per column) instead of appending row by row.
  friend class ColumnarReader;

  std::vector<double> Times;
  std::vector<uint32_t> Cores;
  std::vector<uint32_t> Workload;
  std::vector<uint32_t> Target;
  std::vector<double> EnvNorm;
};

} // namespace medley::trace

#endif // MEDLEY_TRACE_TICKTRACE_H
