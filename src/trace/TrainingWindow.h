//===-- trace/TrainingWindow.h - Trace-to-training-rows reader --*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity: A Mixture of
// Experts Approach for Runtime Mapping in Dynamic Environments" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the most recent rows of a columnar TickTrace into supervised
/// training rows for online expert refitting (DESIGN.md §14.3). Each trace
/// row i yields one sample:
///
///   features  — the 10-d Table-1 vector synthesised from the trace
///               columns (see below),
///   y_thread  — the thread count served at row i (TargetThreads), the
///               behavioural-cloning target for the w model,
///   y_env     — the environment norm observed at row i+1, exactly the
///               quantity the m model predicts.
///
/// The trace stores five columns, not ten features, so the missing
/// dimensions are synthesised deterministically: the three static code
/// features come from a caller-supplied template (the traced region's
/// CodeFeatures), runq-sz is proxied by the workload thread count, and the
/// two load averages by short/long EMAs of it — the same quantities those
/// /proc counters smooth on a real machine. Cached-memory and
/// page-free-rate carry no trace signal and are left zero; under the
/// corpus-wide scaler they contribute a constant the fit folds into its
/// intercept. This is a documented reproduction simplification: the paper
/// retrains from full sensor logs, the reproduction from its five-column
/// flight recorder.
///
/// The last trace row has no successor to supply y_env and is dropped.
/// Everything here is deterministic: same trace + options => byte-identical
/// rows.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TRACE_TRAININGWINDOW_H
#define MEDLEY_TRACE_TRAININGWINDOW_H

#include "linalg/Vector.h"
#include "trace/TickTrace.h"

#include <cstdint>
#include <vector>

namespace medley::trace {

/// Options for extracting a training window from a trace.
struct TrainingWindowOptions {
  /// Maximum number of most-recent trace rows considered (the
  /// --retrain-window knob). 0 means the whole trace.
  size_t Window = 512;

  /// Static code features f1..f3 of the traced region (load/store count,
  /// instructions, branches), copied into every synthesised row.
  double CodeFeatures[3] = {0.0, 0.0, 0.0};

  /// EMA steps for the ldavg-1 / ldavg-5 proxies.
  double EmaShort = 0.25;
  double EmaLong = 0.05;
};

/// The supervised rows extracted from one trace window. Column-oriented
/// like the trace itself; all vectors share one length.
class TrainingWindow {
public:
  /// Extracts rows from the last TrainingWindowOptions::Window rows of
  /// \p Trace. The result is empty when the trace has fewer than two rows.
  static TrainingWindow fromTrace(const TickTrace &Trace,
                                  const TrainingWindowOptions &Options);

  size_t size() const { return ThreadTargets.size(); }
  bool empty() const { return ThreadTargets.empty(); }

  /// 10-d synthesised feature rows, index-aligned with the targets.
  const std::vector<Vec> &features() const { return Features; }

  /// Thread counts served at each row (targets for the w model).
  const Vec &threadTargets() const { return ThreadTargets; }

  /// Next-row environment norms (targets for the m model).
  const Vec &envTargets() const { return EnvTargets; }

  /// Per-row machine regime: true when the workload oversubscribed the
  /// available cores at that row (the RegimeSelector boundary), used to
  /// route samples to regime-tagged experts.
  const std::vector<uint8_t> &contended() const { return Contended; }

private:
  std::vector<Vec> Features;
  Vec ThreadTargets;
  Vec EnvTargets;
  std::vector<uint8_t> Contended;
};

} // namespace medley::trace

#endif // MEDLEY_TRACE_TRAININGWINDOW_H
