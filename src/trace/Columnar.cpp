//===-- trace/Columnar.cpp - Columnar binary trace files ------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "trace/Columnar.h"

#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

using namespace medley;
using namespace medley::trace;

namespace {

constexpr char Magic[8] = {'M', 'D', 'L', 'Y', 'T', 'R', 'C', '1'};
constexpr uint32_t FormatVersion = 1;
constexpr uint32_t NumColumns = 5;
constexpr size_t HeaderBytes = 32;
constexpr size_t DescriptorBytes = 48;
constexpr size_t NameBytes = 24;
constexpr uint32_t TypeF64 = 1;
constexpr uint32_t TypeU32 = 2;

/// The fixed schema: name, element type, element size. Descriptor order is
/// payload order.
struct ColumnSpec {
  const char *Name;
  uint32_t Type;
  uint32_t ElemSize;
};
constexpr ColumnSpec Schema[NumColumns] = {
    {"time", TypeF64, 8},
    {"available_cores", TypeU32, 4},
    {"workload_threads", TypeU32, 4},
    {"target_threads", TypeU32, 4},
    {"env_norm", TypeF64, 8},
};

size_t alignUp8(size_t N) { return (N + 7) & ~size_t(7); }

/// Explicit little-endian scalar encoding, independent of host order.
/// Column payloads are raw element bytes (IEEE-754 doubles / uint32), so
/// the format as a whole assumes a little-endian producer and consumer —
/// the only hosts this project targets.
void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out += static_cast<char>((V >> (8 * I)) & 0xFF);
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out += static_cast<char>((V >> (8 * I)) & 0xFF);
}

uint32_t getU32(const char *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(P[I])) << (8 * I);
  return V;
}

uint64_t getU64(const char *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(P[I])) << (8 * I);
  return V;
}

/// Raw bytes and length of column \p C of \p Trace.
const char *columnData(const TickTrace &Trace, size_t C, size_t &Bytes) {
  switch (C) {
  case 0:
    Bytes = Trace.times().size() * sizeof(double);
    return reinterpret_cast<const char *>(Trace.times().data());
  case 1:
    Bytes = Trace.availableCores().size() * sizeof(uint32_t);
    return reinterpret_cast<const char *>(Trace.availableCores().data());
  case 2:
    Bytes = Trace.workloadThreads().size() * sizeof(uint32_t);
    return reinterpret_cast<const char *>(Trace.workloadThreads().data());
  case 3:
    Bytes = Trace.targetThreads().size() * sizeof(uint32_t);
    return reinterpret_cast<const char *>(Trace.targetThreads().data());
  case 4:
    Bytes = Trace.envNorms().size() * sizeof(double);
    return reinterpret_cast<const char *>(Trace.envNorms().data());
  }
  Bytes = 0;
  return nullptr;
}

} // namespace

support::Error ColumnarWriter::write(const TickTrace &Trace,
                                     std::ostream &OS) {
  const uint64_t Rows = Trace.size();

  // Header and descriptors are assembled in one buffer and written with a
  // single stream operation; each payload follows as one contiguous write.
  std::string Head;
  Head.reserve(HeaderBytes + NumColumns * DescriptorBytes);
  Head.append(Magic, sizeof(Magic));
  putU32(Head, FormatVersion);
  putU32(Head, NumColumns);
  putU64(Head, Rows);
  putU64(Head, 0); // reserved

  uint64_t Offset = HeaderBytes + NumColumns * DescriptorBytes;
  for (const ColumnSpec &Spec : Schema) {
    char Name[NameBytes] = {};
    std::strncpy(Name, Spec.Name, NameBytes - 1);
    Head.append(Name, NameBytes);
    putU32(Head, Spec.Type);
    putU32(Head, Spec.ElemSize);
    putU64(Head, Offset);
    putU64(Head, Rows * Spec.ElemSize);
    Offset = alignUp8(Offset + Rows * Spec.ElemSize);
  }
  OS.write(Head.data(), static_cast<std::streamsize>(Head.size()));

  static const char Zeros[8] = {};
  for (size_t C = 0; C < NumColumns; ++C) {
    size_t Bytes = 0;
    const char *Data = columnData(Trace, C, Bytes);
    if (Bytes > 0)
      OS.write(Data, static_cast<std::streamsize>(Bytes));
    size_t Pad = alignUp8(Bytes) - Bytes;
    if (Pad > 0)
      OS.write(Zeros, static_cast<std::streamsize>(Pad));
  }

  OS.flush();
  if (!OS)
    return {support::ErrorCode::IoFailure, "trace stream write failed"};
  return {};
}

support::Error ColumnarWriter::writeFile(const TickTrace &Trace,
                                         const std::string &Path) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS)
    return {support::ErrorCode::IoFailure,
            "cannot open trace file for writing: " + Path};
  return write(Trace, OS);
}

bool ColumnarReader::read(std::istream &IS, TickTrace &Out,
                          support::Error *Err) {
  char Head[HeaderBytes];
  IS.read(Head, HeaderBytes);
  if (IS.gcount() != static_cast<std::streamsize>(HeaderBytes)) {
    reportError(Err, support::ErrorCode::TruncatedInput,
                "trace header truncated");
    return false;
  }
  if (std::memcmp(Head, Magic, sizeof(Magic)) != 0) {
    reportError(Err, support::ErrorCode::CorruptInput,
                "not a columnar trace file (bad magic)");
    return false;
  }
  uint32_t Version = getU32(Head + 8);
  if (Version != FormatVersion) {
    reportError(Err, support::ErrorCode::CorruptInput,
                "unsupported trace format version " + std::to_string(Version));
    return false;
  }
  uint32_t Columns = getU32(Head + 12);
  if (Columns != NumColumns) {
    reportError(Err, support::ErrorCode::CorruptInput,
                "expected " + std::to_string(NumColumns) +
                    " trace columns, file declares " + std::to_string(Columns));
    return false;
  }
  uint64_t Rows = getU64(Head + 16);

  char Desc[NumColumns * DescriptorBytes];
  IS.read(Desc, sizeof(Desc));
  if (IS.gcount() != static_cast<std::streamsize>(sizeof(Desc))) {
    reportError(Err, support::ErrorCode::TruncatedInput,
                "trace column descriptors truncated");
    return false;
  }

  uint64_t Offsets[NumColumns];
  uint64_t Expected = HeaderBytes + NumColumns * DescriptorBytes;
  for (size_t C = 0; C < NumColumns; ++C) {
    const char *D = Desc + C * DescriptorBytes;
    char Name[NameBytes] = {};
    std::strncpy(Name, Schema[C].Name, NameBytes - 1);
    if (std::memcmp(D, Name, NameBytes) != 0) {
      reportError(Err, support::ErrorCode::CorruptInput,
                  "trace column " + std::to_string(C) + " is not '" +
                      Schema[C].Name + "'");
      return false;
    }
    uint32_t Type = getU32(D + NameBytes);
    uint32_t ElemSize = getU32(D + NameBytes + 4);
    uint64_t Offset = getU64(D + NameBytes + 8);
    uint64_t Length = getU64(D + NameBytes + 16);
    if (Type != Schema[C].Type || ElemSize != Schema[C].ElemSize) {
      reportError(Err, support::ErrorCode::CorruptInput,
                  "trace column '" + std::string(Schema[C].Name) +
                      "' has unexpected type or width");
      return false;
    }
    if (Offset != Expected || (Offset & 7) != 0 ||
        Length != Rows * ElemSize) {
      reportError(Err, support::ErrorCode::CorruptInput,
                  "trace column '" + std::string(Schema[C].Name) +
                      "' has inconsistent offset or length");
      return false;
    }
    Offsets[C] = Offset;
    Expected = alignUp8(Offset + Length);
  }

  TickTrace Trace;
  Trace.Times.resize(Rows);
  Trace.Cores.resize(Rows);
  Trace.Workload.resize(Rows);
  Trace.Target.resize(Rows);
  Trace.EnvNorm.resize(Rows);

  uint64_t Pos = HeaderBytes + NumColumns * DescriptorBytes;
  for (size_t C = 0; C < NumColumns; ++C) {
    if (Offsets[C] > Pos) {
      IS.ignore(static_cast<std::streamsize>(Offsets[C] - Pos));
      Pos = Offsets[C];
    }
    size_t Bytes = 0;
    char *Data = nullptr;
    switch (C) {
    case 0:
      Data = reinterpret_cast<char *>(Trace.Times.data());
      Bytes = Rows * sizeof(double);
      break;
    case 1:
      Data = reinterpret_cast<char *>(Trace.Cores.data());
      Bytes = Rows * sizeof(uint32_t);
      break;
    case 2:
      Data = reinterpret_cast<char *>(Trace.Workload.data());
      Bytes = Rows * sizeof(uint32_t);
      break;
    case 3:
      Data = reinterpret_cast<char *>(Trace.Target.data());
      Bytes = Rows * sizeof(uint32_t);
      break;
    case 4:
      Data = reinterpret_cast<char *>(Trace.EnvNorm.data());
      Bytes = Rows * sizeof(double);
      break;
    }
    if (Bytes > 0) {
      IS.read(Data, static_cast<std::streamsize>(Bytes));
      if (IS.gcount() != static_cast<std::streamsize>(Bytes)) {
        reportError(Err, support::ErrorCode::TruncatedInput,
                    "trace column '" + std::string(Schema[C].Name) +
                        "' payload truncated");
        return false;
      }
    }
    Pos += Bytes;
  }

  Out = std::move(Trace);
  return true;
}

bool ColumnarReader::readFile(const std::string &Path, TickTrace &Out,
                              support::Error *Err) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    reportError(Err, support::ErrorCode::IoFailure,
                "cannot open trace file: " + Path);
    return false;
  }
  return read(IS, Out, Err);
}

void medley::trace::exportCsv(const TickTrace &Trace, std::ostream &OS) {
  CsvWriter W(OS, /*BufferBytes=*/1 << 16);
  W.writeRow({"time", "available_cores", "workload_threads", "target_threads",
              "env_norm"});
  std::vector<std::string> Cells(NumColumns);
  for (size_t I = 0, N = Trace.size(); I < N; ++I) {
    Cells[0] = formatDouble(Trace.times()[I], 6);
    Cells[1] = std::to_string(Trace.availableCores()[I]);
    Cells[2] = std::to_string(Trace.workloadThreads()[I]);
    Cells[3] = std::to_string(Trace.targetThreads()[I]);
    Cells[4] = formatDouble(Trace.envNorms()[I], 6);
    W.writeRow(Cells);
  }
}
