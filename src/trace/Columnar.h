//===-- trace/Columnar.h - Columnar binary trace files ----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The columnar binary on-disk format for TickTrace (DESIGN.md §13):
///
///   offset  size   field
///   0       8      magic "MDLYTRC1"
///   8       4      u32 format version (currently 1)
///   12      4      u32 column count C (currently 5)
///   16      8      u64 row count R
///   24      8      u64 reserved (written as 0)
///   32      C*48   column descriptors, in column order:
///             24   column name, NUL-padded ASCII
///             4    u32 element type (1 = float64, 2 = uint32)
///             4    u32 element size in bytes (8 or 4)
///             8    u64 file offset of the column payload (8-byte aligned)
///             8    u64 payload byte length (= R * element size)
///   ...            column payloads, each 8-byte aligned, zero-padded
///                  between columns, little-endian fixed-width elements
///
/// All scalar header fields are little-endian. Fixed-width elements and
/// aligned payload offsets make the file mmap-friendly: a reader can map
/// it and point at each column in place; the stream reader here does the
/// equivalent with two passes (descriptors, then payloads).
///
/// Writing a trace is five contiguous buffer writes instead of one
/// formatted CSV row per tick; CSV output becomes an offline post-pass
/// (exportCsv) over a trace read back from disk.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TRACE_COLUMNAR_H
#define MEDLEY_TRACE_COLUMNAR_H

#include "support/Error.h"
#include "trace/TickTrace.h"

#include <iosfwd>
#include <string>

namespace medley::trace {

/// Serialises a TickTrace into the columnar binary format.
class ColumnarWriter {
public:
  /// Writes \p Trace to \p OS; IoFailure when the stream fails.
  static support::Error write(const TickTrace &Trace, std::ostream &OS);

  /// Writes \p Trace to the file at \p Path (truncating); IoFailure when
  /// the file cannot be opened or the write fails.
  static support::Error writeFile(const TickTrace &Trace,
                                  const std::string &Path);
};

/// Deserialises the columnar binary format back into a TickTrace.
class ColumnarReader {
public:
  /// Reads a trace from \p IS into \p Out. Returns false and reports
  /// through \p Err on failure: TruncatedInput when the stream ends before
  /// the header, a descriptor or a payload is complete; CorruptInput when
  /// the magic, version, or column schema does not match.
  static bool read(std::istream &IS, TickTrace &Out,
                   support::Error *Err = nullptr);

  /// Reads a trace from the file at \p Path; IoFailure when the file
  /// cannot be opened, otherwise as read().
  static bool readFile(const std::string &Path, TickTrace &Out,
                       support::Error *Err = nullptr);
};

/// The offline CSV post-pass: one header row then one row per tick,
/// emitted through a buffered support CsvWriter (so the byte format is
/// exactly CsvWriter's, and loops that used to format CSV per tick can
/// instead record binary and export afterwards).
void exportCsv(const TickTrace &Trace, std::ostream &OS);

} // namespace medley::trace

#endif // MEDLEY_TRACE_COLUMNAR_H
