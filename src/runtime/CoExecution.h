//===-- runtime/CoExecution.h - Target/workload co-execution ----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment execution primitive of Section 6: "Target and workloads
/// begin their execution at the same time and continue running till the
/// other finishes." The target runs to completion under its policy; every
/// workload program loops (restarting when done) until the target finishes.
/// The run reports the target's completion time, the workload's aggregate
/// throughput, and optional traces for the timeline figures.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_RUNTIME_COEXECUTION_H
#define MEDLEY_RUNTIME_COEXECUTION_H

#include "runtime/PolicyBinding.h"
#include "sim/Simulation.h"
#include "trace/TickTrace.h"
#include "workload/ThreadPattern.h"

#include <memory>

namespace medley::runtime {

/// Factory for availability patterns (patterns are stateful, so every run
/// constructs a fresh one).
using AvailabilityFactory =
    std::function<std::unique_ptr<sim::AvailabilityPattern>()>;

/// Configuration shared by the runs of one experimental scenario.
struct CoExecutionConfig {
  sim::MachineConfig Machine = sim::MachineConfig::evaluationPlatform();
  AvailabilityFactory Availability;
  double Tick = 0.1;
  double MaxTime = 900.0; ///< Hard cap; runs report a timeout beyond it.

  /// Reproducible workload thread behaviour (when programs are
  /// pattern-driven): seed, thread range and change period of the random
  /// walk. Each workload program derives its own stream from the seed.
  uint64_t WorkloadSeed = 0xC0FFEE;
  unsigned WorkloadMinThreads = 2;
  unsigned WorkloadMaxThreads = 16;
  double WorkloadChangePeriod = 5.0;

  /// Record per-tick traces (availability, workload threads, env norm).
  bool RecordTraces = false;

  /// Region-level decision memoization for every policy binding of the run
  /// (BindOptions::Memoize). Off by default; decision sequences are
  /// bit-identical either way — this is purely a hot-path switch.
  bool MemoizeDecisions = false;

  /// Optional fault injection (the chaos harness): when set, every run
  /// constructs a fresh injector and hands it to the simulation, which
  /// then perturbs sensors, availability and monitor updates according to
  /// the injector's plan. Injectors are stateful and seeded, so runs stay
  /// deterministic.
  sim::FaultInjectorFactory Faults;
};

/// One workload program plus how it chooses threads. Exactly one of
/// Chooser / Policy may be set; if neither is, the config's reproducible
/// thread pattern is used.
struct WorkloadProgramSetup {
  workload::ProgramSpec Spec;
  workload::ThreadChooser Chooser;               ///< Optional explicit chooser.
  std::shared_ptr<policy::ThreadPolicy> Policy;  ///< Optional adaptive policy.
};

/// Per-tick system trace point (one materialised row of the columnar
/// trace::TickTrace).
using TracePoint = trace::TracePoint;

/// Outcome of one co-execution run.
struct CoExecutionResult {
  bool TargetFinished = false;
  double TargetTime = 0.0; ///< Completion time (MaxTime when timed out).
  size_t TargetRegions = 0;

  /// Aggregate workload progress rate: serial-work units completed per
  /// second, summed across workload programs (Fig 13a's metric).
  double WorkloadThroughput = 0.0;

  /// Thread-selection decisions of the target's policy.
  std::vector<Decision> TargetDecisions;

  /// Per-tick traces, stored column-wise (only populated when
  /// RecordTraces is set). Persist with trace::ColumnarWriter; export to
  /// CSV offline with trace::exportCsv.
  trace::TickTrace Trace;

  /// Counters of injected faults (zero when no injector was configured).
  support::FaultStats Faults;
};

/// Runs \p TargetSpec under \p TargetPolicy against \p Workload.
CoExecutionResult runCoExecution(const CoExecutionConfig &Config,
                                 const workload::ProgramSpec &TargetSpec,
                                 policy::ThreadPolicy &TargetPolicy,
                                 std::vector<WorkloadProgramSetup> Workload);

/// Builds pattern-driven workload setups for the named catalog programs.
std::vector<WorkloadProgramSetup>
patternWorkload(const std::vector<std::string> &Names);

/// Outcome of a two-program pair run (Section 7.4, adaptive workloads).
struct PairExecutionResult {
  bool BothFinished = false;
  double TimeA = 0.0;
  double TimeB = 0.0;
  /// Completion time of the pair (max of the two; MaxTime on timeout).
  double CombinedTime = 0.0;
};

/// Runs two programs side by side, each under its own policy, until both
/// complete ("the combined execution time when one program co-executes
/// with another and both can adapt"). Availability and tick come from
/// \p Config; the config's workload-pattern fields are unused.
PairExecutionResult runPairExecution(const CoExecutionConfig &Config,
                                     const workload::ProgramSpec &SpecA,
                                     policy::ThreadPolicy &PolicyA,
                                     const workload::ProgramSpec &SpecB,
                                     policy::ThreadPolicy &PolicyB);

} // namespace medley::runtime

#endif // MEDLEY_RUNTIME_COEXECUTION_H
