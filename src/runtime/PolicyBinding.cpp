//===-- runtime/PolicyBinding.cpp - Bind policies to programs -----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "runtime/PolicyBinding.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <memory>

using namespace medley;
using namespace medley::runtime;

namespace {

/// One slot of the direct-mapped decision memo. The key quadruple
/// (Region, EnvEpoch, WorkloadBits, MaxThreads) pins every input of
/// buildFeatures bitwise: code features come from the RegionSpec, the
/// environment epoch proves the sampled Env unchanged apart from
/// WorkloadThreads (keyed by its raw bits), and TotalCores is a binding
/// constant. A valid slot therefore stores exactly the FeatureVector a
/// rebuild would produce — and the decision derived from it.
struct MemoEntry {
  bool Valid = false;
  const workload::RegionSpec *Region = nullptr;
  uint64_t Epoch = 0;
  uint64_t WorkloadBits = 0;
  unsigned MaxThreads = 0;
  policy::FeatureVector Features;
  unsigned Threads = 0;
  unsigned Ceiling = 0;
  bool Clamped = false;
};

constexpr size_t MemoSlots = 64; // Power of two; ~8 KB per binding.

struct MemoTable {
  std::array<MemoEntry, MemoSlots> Entries;

  static uint64_t mix(uint64_t X) {
    X ^= X >> 33;
    X *= 0xFF51AFD7ED558CCDULL;
    X ^= X >> 33;
    return X;
  }

  MemoEntry &slotFor(const workload::RegionContext &Context,
                     uint64_t WorkloadBits) {
    uint64_t H = mix(reinterpret_cast<uintptr_t>(Context.Region) ^
                     mix(Context.EnvEpoch) ^ mix(WorkloadBits) ^
                     Context.MaxThreads);
    return Entries[H & (MemoSlots - 1)];
  }
};

uint64_t doubleBits(double X) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(X));
  std::memcpy(&Bits, &X, sizeof(Bits));
  return Bits;
}

/// Per-binding chooser state: feature scratch plus the optional memo.
struct BindingState {
  policy::DecisionScratch Scratch;
  MemoTable Memo;
};

} // namespace

unsigned medley::runtime::threadCeiling(const policy::FeatureVector &Features) {
  // f5 is the observed available-processor count; buildFeatures guarantees
  // it is finite and non-negative. During a zero-available window the
  // ceiling is 1: a program cannot run with no threads, but it must not
  // pile more onto a machine that has none.
  double Processors = Features.Values[4];
  long Avail = std::lround(std::min(
      Processors, static_cast<double>(Features.MaxThreads)));
  long Ceiling = std::clamp<long>(
      Avail, 1, static_cast<long>(std::max(1u, Features.MaxThreads)));
  return static_cast<unsigned>(Ceiling);
}

workload::ThreadChooser
medley::runtime::bindPolicy(policy::ThreadPolicy &Policy, unsigned TotalCores,
                            std::vector<Decision> *Trace) {
  return bindPolicy(Policy, TotalCores, BindOptions{false, Trace});
}

workload::ThreadChooser
medley::runtime::bindPolicy(policy::ThreadPolicy &Policy, unsigned TotalCores,
                            BindOptions Options) {
  // One state block per binding: the chooser is called once per region
  // decision on a single worker, so the feature buffers and the memo are
  // reused allocation-free across decisions without any synchronisation.
  auto State = std::make_shared<BindingState>();
  const bool Memoize = Options.Memoize;
  const bool Pure = Policy.decisionsArePure();
  std::vector<Decision> *Trace = Options.Trace;
  return [&Policy, TotalCores, Trace, Memoize, Pure,
          State](const workload::RegionContext &Context) {
    // Epoch 0 marks a context assembled outside the simulator: no epoch
    // proof exists there, so those decisions always take the full path.
    const uint64_t WorkloadBits = doubleBits(Context.Env.WorkloadThreads);
    MemoEntry *Slot = nullptr;
    bool Hit = false;
    if (Memoize && Context.EnvEpoch != 0) {
      Slot = &State->Memo.slotFor(Context, WorkloadBits);
      Hit = Slot->Valid && Slot->Region == Context.Region &&
            Slot->Epoch == Context.EnvEpoch &&
            Slot->WorkloadBits == WorkloadBits &&
            Slot->MaxThreads == Context.MaxThreads;
    }

    unsigned Threads, Ceiling;
    bool Clamped;
    double EnvNorm;
    if (Hit && Pure) {
      // Full reuse: a pure policy maps bit-identical features to the same
      // decision, and its beginDecisionEpoch is a no-op by contract.
      Threads = Slot->Threads;
      Ceiling = Slot->Ceiling;
      Clamped = Slot->Clamped;
      EnvNorm = Slot->Features.EnvNorm;
    } else {
      policy::FeatureVector &Features =
          Hit ? Slot->Features : State->Scratch.Features;
      // Epoch boundary first: a registry-backed policy swaps to the latest
      // published snapshot here, so the decision below runs entirely
      // against one consistent expert set.
      Policy.beginDecisionEpoch();
      if (Hit) {
        // The stored vector is bitwise what buildFeatures would produce;
        // only the decision-time metadata needs refreshing.
        Features.Now = Context.Now;
      } else {
        policy::buildFeatures(Context, TotalCores, Features);
      }
      unsigned Raw = Policy.select(Features);
      Ceiling = threadCeiling(Features);
      Threads = std::clamp(Raw, 1u, Ceiling);
      Clamped = Threads != Raw;
      EnvNorm = Features.EnvNorm;
      if (Slot && !Hit) {
        Slot->Valid = true;
        Slot->Region = Context.Region;
        Slot->Epoch = Context.EnvEpoch;
        Slot->WorkloadBits = WorkloadBits;
        Slot->MaxThreads = Context.MaxThreads;
        Slot->Features = Features;
        Slot->Threads = Threads;
        Slot->Ceiling = Ceiling;
        Slot->Clamped = Clamped;
      } else if (Slot) {
        // Impure-policy hit: the decision may legitimately differ from the
        // stored one (the policy adapted in between); keep it fresh for
        // any later pure consumers of the slot's decision fields.
        Slot->Threads = Threads;
        Slot->Clamped = Clamped;
      }
    }

    if (Trace) {
      Decision D;
      D.Time = Context.Now;
      D.Threads = Threads;
      D.EnvNorm = EnvNorm;
      D.AvailableProcessors = Ceiling;
      D.Clamped = Clamped;
      Trace->push_back(D);
    }
    return Threads;
  };
}

workload::RegionObserver
medley::runtime::bindObserver(policy::ThreadPolicy &Policy) {
  return [&Policy](const workload::RegionOutcome &Outcome) {
    Policy.observe(Outcome);
  };
}
