//===-- runtime/PolicyBinding.cpp - Bind policies to programs -----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "runtime/PolicyBinding.h"

using namespace medley;
using namespace medley::runtime;

workload::ThreadChooser
medley::runtime::bindPolicy(policy::ThreadPolicy &Policy, unsigned TotalCores,
                            std::vector<Decision> *Trace) {
  return [&Policy, TotalCores, Trace](const workload::RegionContext &Context) {
    policy::FeatureVector Features =
        policy::buildFeatures(Context, TotalCores);
    unsigned Threads = Policy.select(Features);
    if (Trace)
      Trace->push_back(Decision{Context.Now, Threads, Features.EnvNorm});
    return Threads;
  };
}

workload::RegionObserver
medley::runtime::bindObserver(policy::ThreadPolicy &Policy) {
  return [&Policy](const workload::RegionOutcome &Outcome) {
    Policy.observe(Outcome);
  };
}
