//===-- runtime/PolicyBinding.cpp - Bind policies to programs -----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "runtime/PolicyBinding.h"

#include <algorithm>
#include <cmath>
#include <memory>

using namespace medley;
using namespace medley::runtime;

unsigned medley::runtime::threadCeiling(const policy::FeatureVector &Features) {
  // f5 is the observed available-processor count; buildFeatures guarantees
  // it is finite and non-negative. During a zero-available window the
  // ceiling is 1: a program cannot run with no threads, but it must not
  // pile more onto a machine that has none.
  double Processors = Features.Values[4];
  long Avail = std::lround(std::min(
      Processors, static_cast<double>(Features.MaxThreads)));
  long Ceiling = std::clamp<long>(
      Avail, 1, static_cast<long>(std::max(1u, Features.MaxThreads)));
  return static_cast<unsigned>(Ceiling);
}

workload::ThreadChooser
medley::runtime::bindPolicy(policy::ThreadPolicy &Policy, unsigned TotalCores,
                            std::vector<Decision> *Trace) {
  // One scratch per binding: the chooser is called once per region decision
  // on a single worker, so the feature buffers are reused allocation-free
  // across decisions without any synchronisation.
  auto Scratch = std::make_shared<policy::DecisionScratch>();
  return [&Policy, TotalCores, Trace,
          Scratch](const workload::RegionContext &Context) {
    policy::FeatureVector &Features = Scratch->Features;
    // Epoch boundary first: a registry-backed policy swaps to the latest
    // published snapshot here, so the decision below runs entirely against
    // one consistent expert set.
    Policy.beginDecisionEpoch();
    policy::buildFeatures(Context, TotalCores, Features);
    unsigned Raw = Policy.select(Features);
    unsigned Ceiling = threadCeiling(Features);
    unsigned Threads = std::clamp(Raw, 1u, Ceiling);
    if (Trace) {
      Decision D;
      D.Time = Context.Now;
      D.Threads = Threads;
      D.EnvNorm = Features.EnvNorm;
      D.AvailableProcessors = Ceiling;
      D.Clamped = Threads != Raw;
      Trace->push_back(D);
    }
    return Threads;
  };
}

workload::RegionObserver
medley::runtime::bindObserver(policy::ThreadPolicy &Policy) {
  return [&Policy](const workload::RegionOutcome &Outcome) {
    Policy.observe(Outcome);
  };
}
