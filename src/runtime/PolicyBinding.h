//===-- runtime/PolicyBinding.h - Bind policies to programs -----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue turning a ThreadPolicy into the ThreadChooser/RegionObserver hooks
/// a Program expects: features are assembled from the region context at
/// every parallel-loop start, and region completions are fed back.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_RUNTIME_POLICYBINDING_H
#define MEDLEY_RUNTIME_POLICYBINDING_H

#include "policy/ThreadPolicy.h"
#include "workload/Program.h"

namespace medley::runtime {

/// Record of one policy decision (for the Figure-2 timelines and the
/// Figure-17 thread distributions).
struct Decision {
  double Time = 0.0;
  unsigned Threads = 0;
  double EnvNorm = 0.0;
  /// Processors observed available at the decision (the clamp ceiling).
  unsigned AvailableProcessors = 0;
  /// True when the policy's raw prediction had to be clamped.
  bool Clamped = false;
};

/// The binding-site clamp: the largest thread count any policy may emit
/// given \p Features — min(MaxThreads, observed available processors),
/// never below 1. No policy can oversubscribe an unplugged machine.
unsigned threadCeiling(const policy::FeatureVector &Features);

/// Options for bindPolicy.
struct BindOptions {
  /// Region-level decision memoization (ROADMAP item 5, DESIGN.md §16.5).
  /// The chooser keeps a small direct-mapped memo keyed on (region
  /// identity, environment epoch, observer workload-thread bits,
  /// MaxThreads); the simulator's EnvEpoch proves every other selector
  /// input bit-identical, so a hit reuses the previously assembled
  /// feature vector without rebuilding it — and, when the policy declares
  /// decisionsArePure(), reuses the previous decision outright without
  /// calling select(). Either way the emitted decision sequence is
  /// bit-identical to the unmemoized one by construction. Contexts with
  /// EnvEpoch == 0 (built outside the simulator) never memoize.
  bool Memoize = false;

  /// As in the two-argument bindPolicy: decisions appended here.
  std::vector<Decision> *Trace = nullptr;
};

/// Builds a chooser that assembles the 10-feature vector and delegates to
/// \p Policy; the result is clamped to [1, threadCeiling()]. If \p Trace
/// is non-null, each decision is appended to it. \p Policy (and \p Trace)
/// must outlive the returned chooser.
workload::ThreadChooser bindPolicy(policy::ThreadPolicy &Policy,
                                   unsigned TotalCores,
                                   std::vector<Decision> *Trace = nullptr);

/// As above, with explicit options (memoization, tracing).
workload::ThreadChooser bindPolicy(policy::ThreadPolicy &Policy,
                                   unsigned TotalCores, BindOptions Options);

/// Builds a region observer that forwards completions to \p Policy.
workload::RegionObserver bindObserver(policy::ThreadPolicy &Policy);

} // namespace medley::runtime

#endif // MEDLEY_RUNTIME_POLICYBINDING_H
