//===-- runtime/CoExecution.cpp - Target/workload co-execution ----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "runtime/CoExecution.h"

#include "support/Error.h"
#include "workload/Catalog.h"

#include <algorithm>
#include <cassert>

using namespace medley;
using namespace medley::runtime;

std::vector<WorkloadProgramSetup>
medley::runtime::patternWorkload(const std::vector<std::string> &Names) {
  std::vector<WorkloadProgramSetup> Setups;
  Setups.reserve(Names.size());
  for (const std::string &Name : Names) {
    WorkloadProgramSetup Setup;
    Setup.Spec = workload::Catalog::byName(Name);
    Setups.push_back(std::move(Setup));
  }
  return Setups;
}

PairExecutionResult
medley::runtime::runPairExecution(const CoExecutionConfig &Config,
                                  const workload::ProgramSpec &SpecA,
                                  policy::ThreadPolicy &PolicyA,
                                  const workload::ProgramSpec &SpecB,
                                  policy::ThreadPolicy &PolicyB) {
  if (!Config.Availability)
    reportFatalError("pair-execution config without an availability factory");

  sim::Simulation Simulation(Config.Machine, Config.Availability(),
                             Config.Tick);
  if (Config.Faults)
    Simulation.setFaultInjector(Config.Faults());
  unsigned TotalCores = Config.Machine.TotalCores;

  auto A = std::make_shared<workload::Program>(
      SpecA, bindPolicy(PolicyA, TotalCores), TotalCores, /*Looping=*/false);
  A->setRegionObserver(bindObserver(PolicyA));
  auto B = std::make_shared<workload::Program>(
      SpecB, bindPolicy(PolicyB, TotalCores), TotalCores, /*Looping=*/false);
  B->setRegionObserver(bindObserver(PolicyB));
  Simulation.addTask(A);
  Simulation.addTask(B);

  PairExecutionResult Result;
  Result.BothFinished = Simulation.runUntil(
      [&] { return A->finished() && B->finished(); }, Config.MaxTime);
  Result.TimeA = A->finished() ? A->completionTime() : Config.MaxTime;
  Result.TimeB = B->finished() ? B->completionTime() : Config.MaxTime;
  Result.CombinedTime = std::max(Result.TimeA, Result.TimeB);
  return Result;
}

CoExecutionResult
medley::runtime::runCoExecution(const CoExecutionConfig &Config,
                                const workload::ProgramSpec &TargetSpec,
                                policy::ThreadPolicy &TargetPolicy,
                                std::vector<WorkloadProgramSetup> Workload) {
  if (!Config.Availability)
    reportFatalError("co-execution config without an availability factory");
  assert(Config.Machine.valid() && "invalid machine configuration");

  sim::Simulation Simulation(Config.Machine, Config.Availability(),
                             Config.Tick);
  if (Config.Faults)
    Simulation.setFaultInjector(Config.Faults());
  unsigned TotalCores = Config.Machine.TotalCores;

  CoExecutionResult Result;

  // The non-looping target makes exactly one decision per region, so the
  // decision trace never reallocates mid-run.
  Result.TargetDecisions.reserve(TargetSpec.Regions.size());

  // Target program driven by its policy.
  auto Target = std::make_shared<workload::Program>(
      TargetSpec,
      bindPolicy(TargetPolicy, TotalCores,
                 BindOptions{Config.MemoizeDecisions,
                             &Result.TargetDecisions}),
      TotalCores, /*Looping=*/false);
  Target->setRegionObserver(bindObserver(TargetPolicy));
  Simulation.addTask(Target);

  // Workload programs loop until the target finishes. Pattern-driven
  // programs derive independent reproducible streams from the config seed,
  // making workload behaviour identical across policies under comparison.
  std::vector<std::shared_ptr<workload::Program>> WorkloadPrograms;
  uint64_t StreamSeed = Config.WorkloadSeed;
  for (WorkloadProgramSetup &Setup : Workload) {
    assert(!(Setup.Chooser && Setup.Policy) &&
           "workload setup with both a chooser and a policy");
    workload::ThreadChooser Chooser;
    if (Setup.Chooser) {
      Chooser = std::move(Setup.Chooser);
    } else if (Setup.Policy) {
      Chooser = bindPolicy(*Setup.Policy, TotalCores,
                           BindOptions{Config.MemoizeDecisions, nullptr});
    } else {
      StreamSeed = StreamSeed * 6364136223846793005ULL + 1442695040888963407ULL;
      Chooser = workload::ThreadPattern::makeChooser(
          StreamSeed, Config.WorkloadMinThreads, Config.WorkloadMaxThreads,
          Config.WorkloadChangePeriod);
    }
    auto Prog = std::make_shared<workload::Program>(
        Setup.Spec, std::move(Chooser), TotalCores, /*Looping=*/true);
    if (Setup.Policy) {
      auto Policy = Setup.Policy;
      Prog->setRegionObserver(
          [Policy](const workload::RegionOutcome &Outcome) {
            Policy->observe(Outcome);
          });
    }
    WorkloadPrograms.push_back(Prog);
    Simulation.addTask(Prog);
  }

  if (Config.RecordTraces) {
    // One trace point lands per tick; reserving the worst case up front
    // keeps the tick loop free of reallocation stalls.
    Result.Trace.reserve(
        static_cast<size_t>(Config.MaxTime / Config.Tick) + 1);
    auto Capture = [&Result, Target,
                    WorkloadPrograms](sim::Simulation &Sim) {
      TracePoint Point;
      Point.Time = Sim.now();
      Point.AvailableCores = Sim.availableCores();
      unsigned External = 0;
      for (const auto &Prog : WorkloadPrograms)
        External += Prog->activeThreads();
      Point.WorkloadThreads = External;
      Point.TargetThreads = Target->activeThreads();
      Point.EnvNorm = Sim.monitor().envNorm(Target->activeThreads());
      Result.Trace.append(Point);
    };
    Simulation.addTickHook(Capture);
  }

  Result.TargetFinished = Simulation.runUntil(
      [&] { return Target->finished(); }, Config.MaxTime);
  Result.TargetTime =
      Result.TargetFinished ? Target->completionTime() : Config.MaxTime;
  Result.TargetRegions = Target->regionsExecuted();

  double Elapsed = std::max(Simulation.now(), Config.Tick);
  double WorkloadWork = 0.0;
  for (const auto &Prog : WorkloadPrograms)
    WorkloadWork += Prog->workCompleted();
  Result.WorkloadThroughput = WorkloadWork / Elapsed;
  if (const sim::FaultInjector *Injector = Simulation.faultInjector())
    Result.Faults = Injector->stats();
  return Result;
}
