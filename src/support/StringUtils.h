//===-- support/StringUtils.h - String formatting helpers -------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the table/CSV writers and the reporters.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_STRINGUTILS_H
#define MEDLEY_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace medley {

/// Formats \p Value with \p Precision digits after the decimal point.
std::string formatDouble(double Value, int Precision = 2);

/// Pads \p S with spaces on the left to \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

/// Pads \p S with spaces on the right to \p Width characters.
std::string padRight(const std::string &S, size_t Width);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Renders a horizontal ASCII bar of length round(Value * UnitsPerChar),
/// capped at \p MaxChars. Used by the figure benches to sketch bar charts.
std::string asciiBar(double Value, double UnitsPerChar, size_t MaxChars = 60);

} // namespace medley

#endif // MEDLEY_SUPPORT_STRINGUTILS_H
