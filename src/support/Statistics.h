//===-- support/Statistics.h - Summary statistics ---------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics used throughout the evaluation. The paper reports
/// harmonic means of speedups ("the average values (hmean) are harmonic
/// means to avoid outliers"), so harmonicMean is the default aggregate.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_STATISTICS_H
#define MEDLEY_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace medley {

/// Arithmetic mean; returns 0 for an empty range.
double mean(const std::vector<double> &Values);

/// Harmonic mean; every element must be strictly positive.
double harmonicMean(const std::vector<double> &Values);

/// Geometric mean; every element must be strictly positive.
double geometricMean(const std::vector<double> &Values);

/// Median (average of the two central elements for even sizes).
double median(std::vector<double> Values);

/// Unbiased sample standard deviation; returns 0 for fewer than 2 values.
double stddev(const std::vector<double> &Values);

/// Smallest element; asserts on empty input.
double minOf(const std::vector<double> &Values);

/// Largest element; asserts on empty input.
double maxOf(const std::vector<double> &Values);

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return N == 0 ? 0.0 : Mean; }
  double variance() const;
  double stddev() const;

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
};

/// Exponential moving average with a time-constant expressed in seconds,
/// mirroring the kernel's 1-minute / 5-minute load averages.
class Ema {
public:
  /// \p TimeConstant is the averaging horizon in seconds.
  explicit Ema(double TimeConstant);

  /// Folds in sample \p X observed over an interval of \p Dt seconds.
  void update(double X, double Dt);

  double value() const { return Value; }
  bool primed() const { return Primed; }

  /// Resets to the unprimed state.
  void reset();

private:
  double TimeConstant;
  double Value = 0.0;
  bool Primed = false;
  /// One-entry alpha memo: simulation loops call update() with a constant
  /// tick length, and 1 - exp(-Dt/tau) is a pure function of Dt, so the
  /// cached value is bit-identical to recomputing it. Kills an exp() per
  /// call on the tick hot path.
  double LastDt = 0.0;
  double LastAlpha = 0.0;
};

} // namespace medley

#endif // MEDLEY_SUPPORT_STATISTICS_H
