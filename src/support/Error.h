//===-- support/Error.h - Fatal error reporting -----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity: A Mixture of
// Experts Approach for Runtime Mapping in Dynamic Environments" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error helpers for programmatic errors. Recoverable conditions are
/// reported through return values; these helpers are for broken invariants.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_ERROR_H
#define MEDLEY_SUPPORT_ERROR_H

#include <string>

namespace medley {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that must be diagnosed even in builds without assertions.
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace medley

/// Marks a point in code that must never be reached.
#define MEDLEY_UNREACHABLE(MSG)                                               \
  ::medley::reportFatalError(std::string("unreachable: ") + (MSG))

#endif // MEDLEY_SUPPORT_ERROR_H
