//===-- support/Error.h - Fatal error reporting -----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity: A Mixture of
// Experts Approach for Runtime Mapping in Dynamic Environments" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting. Broken invariants go through reportFatalError (print
/// and abort); recoverable conditions — malformed input files, rejected
/// models, injected faults — are described by support::Error, a small
/// code + message value returned (or filled through an out-parameter)
/// alongside the usual optional/bool result so callers can degrade
/// gracefully instead of propagating garbage.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_ERROR_H
#define MEDLEY_SUPPORT_ERROR_H

#include <string>

namespace medley {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that must be diagnosed even in builds without assertions.
[[noreturn]] void reportFatalError(const std::string &Message);

namespace support {

/// Taxonomy of recoverable failures.
enum class ErrorCode {
  None = 0,       ///< Success.
  IoFailure,      ///< File could not be opened / read / written.
  TruncatedInput, ///< Input ended mid-record.
  CorruptInput,   ///< Structure violated (bad magic, arity, ordering).
  NonFiniteValue, ///< A NaN/Inf where a finite number is required.
  InvalidArgument,///< Caller-supplied parameter out of range.
  ChecksumMismatch, ///< Stored content checksum disagrees with the payload.
  StaleVersion,   ///< Snapshot version older than one already observed.
};

/// Short stable name of \p Code ("io-failure", "truncated-input", ...).
const char *errorCodeName(ErrorCode Code);

/// A recoverable error: a code from the taxonomy plus a human-readable
/// description. Default-constructed instances mean success and convert to
/// false.
class Error {
public:
  Error() = default;
  Error(ErrorCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {}

  /// True when an error is present.
  explicit operator bool() const { return Code != ErrorCode::None; }

  ErrorCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// "code-name: message" (empty string for success).
  std::string str() const;

private:
  ErrorCode Code = ErrorCode::None;
  std::string Message;
};

/// Assigns \p E to \p Out when \p Out is non-null; a helper for the
/// `optional<T> f(..., Error *Err)` reporting convention.
void reportError(Error *Out, ErrorCode Code, const std::string &Message);

} // namespace support
} // namespace medley

/// Marks a point in code that must never be reached.
#define MEDLEY_UNREACHABLE(MSG)                                               \
  ::medley::reportFatalError(std::string("unreachable: ") + (MSG))

#endif // MEDLEY_SUPPORT_ERROR_H
