//===-- support/Table.h - Aligned text tables -------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned text table used by the bench binaries to print
/// the rows of each paper table/figure.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_TABLE_H
#define MEDLEY_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace medley {

/// Column-aligned text table. Build with addRow/addCell, then print.
///
/// The first row added after construction is treated as the header and is
/// separated from the body by a rule when printed.
class Table {
public:
  explicit Table(std::string Title = "");

  /// Starts a new row.
  void addRow();

  /// Appends a cell to the current row.
  void addCell(const std::string &Text);
  void addCell(double Value, int Precision = 2);
  void addCell(int Value);
  void addCell(unsigned Value);

  /// Convenience: starts a row and fills it with \p Cells.
  void addRow(const std::vector<std::string> &Cells);

  size_t numRows() const { return Rows.size(); }

  /// Renders the table with every column padded to its widest cell.
  void print(std::ostream &OS) const;

private:
  std::string Title;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace medley

#endif // MEDLEY_SUPPORT_TABLE_H
