//===-- support/FaultStats.cpp - Degradation-ladder counters --------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/FaultStats.h"

#include <sstream>

using namespace medley::support;

void FaultStats::merge(const FaultStats &Other) {
  SensorDropouts += Other.SensorDropouts;
  SensorCorruptions += Other.SensorCorruptions;
  UnplugOverrides += Other.UnplugOverrides;
  StaleTicks += Other.StaleTicks;
  SanitizedValues += Other.SanitizedValues;
  Quarantines += Other.Quarantines;
  Readmissions += Other.Readmissions;
  DefaultFallbacks += Other.DefaultFallbacks;
  ClampedPredictions += Other.ClampedPredictions;
  CellRetries += Other.CellRetries;
  CellFailures += Other.CellFailures;
  TornPublications += Other.TornPublications;
  StaleSnapshotReads += Other.StaleSnapshotReads;
  CandidateCorruptions += Other.CandidateCorruptions;
  SnapshotPublications += Other.SnapshotPublications;
  SnapshotPromotions += Other.SnapshotPromotions;
  SnapshotRollbacks += Other.SnapshotRollbacks;
  ChecksumRejects += Other.ChecksumRejects;
}

bool FaultStats::clean() const {
  return SensorDropouts == 0 && SensorCorruptions == 0 &&
         UnplugOverrides == 0 && StaleTicks == 0 && SanitizedValues == 0 &&
         Quarantines == 0 && Readmissions == 0 && DefaultFallbacks == 0 &&
         ClampedPredictions == 0 && CellRetries == 0 && CellFailures == 0 &&
         TornPublications == 0 && StaleSnapshotReads == 0 &&
         CandidateCorruptions == 0 && SnapshotPublications == 0 &&
         SnapshotPromotions == 0 && SnapshotRollbacks == 0 &&
         ChecksumRejects == 0;
}

std::string FaultStats::summary() const {
  std::ostringstream OS;
  auto Emit = [&OS, First = true](const char *Key, uint64_t N) mutable {
    if (N == 0)
      return;
    if (!First)
      OS << ' ';
    First = false;
    OS << Key << '=' << N;
  };
  Emit("dropouts", SensorDropouts);
  Emit("corruptions", SensorCorruptions);
  Emit("unplugs", UnplugOverrides);
  Emit("stale", StaleTicks);
  Emit("sanitized", SanitizedValues);
  Emit("quarantines", Quarantines);
  Emit("readmissions", Readmissions);
  Emit("fallbacks", DefaultFallbacks);
  Emit("clamped", ClampedPredictions);
  Emit("retries", CellRetries);
  Emit("cell-failures", CellFailures);
  Emit("torn-publications", TornPublications);
  Emit("stale-snapshot-reads", StaleSnapshotReads);
  Emit("candidate-corruptions", CandidateCorruptions);
  Emit("publications", SnapshotPublications);
  Emit("promotions", SnapshotPromotions);
  Emit("rollbacks", SnapshotRollbacks);
  Emit("checksum-rejects", ChecksumRejects);
  return OS.str();
}
