//===-- support/Error.cpp - Fatal error reporting -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

namespace medley {

void reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "medley fatal error: %s\n", Message.c_str());
  std::abort();
}

} // namespace medley
