//===-- support/Error.cpp - Fatal error reporting -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

namespace medley {

void reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "medley fatal error: %s\n", Message.c_str());
  std::abort();
}

namespace support {

const char *errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::None:
    return "none";
  case ErrorCode::IoFailure:
    return "io-failure";
  case ErrorCode::TruncatedInput:
    return "truncated-input";
  case ErrorCode::CorruptInput:
    return "corrupt-input";
  case ErrorCode::NonFiniteValue:
    return "non-finite-value";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::ChecksumMismatch:
    return "checksum-mismatch";
  case ErrorCode::StaleVersion:
    return "stale-version";
  }
  return "unknown";
}

std::string Error::str() const {
  if (Code == ErrorCode::None)
    return "";
  return std::string(errorCodeName(Code)) + ": " + Message;
}

void reportError(Error *Out, ErrorCode Code, const std::string &Message) {
  if (Out)
    *Out = Error(Code, Message);
}

} // namespace support
} // namespace medley
