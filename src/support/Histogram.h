//===-- support/Histogram.h - Integer histograms ----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Histogram over small non-negative integers, used to record the
/// distribution of predicted thread numbers (paper Figure 17).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_HISTOGRAM_H
#define MEDLEY_SUPPORT_HISTOGRAM_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace medley {

/// Counts occurrences of integer values; grows to fit the largest value.
class Histogram {
public:
  /// Records one occurrence of \p Value.
  void add(unsigned Value);

  /// Number of samples recorded so far.
  size_t total() const { return Total; }

  /// Raw count for \p Value (0 if never seen).
  size_t count(unsigned Value) const;

  /// Fraction of samples equal to \p Value.
  double frequency(unsigned Value) const;

  /// Largest value recorded (0 if empty).
  unsigned maxValue() const;

  /// Sample mean of the recorded values.
  double meanValue() const;

  /// Value with the highest count (smallest such value on ties).
  unsigned mode() const;

  /// Returns counts grouped into buckets of width \p BucketWidth starting
  /// at value 1: [1..W], [W+1..2W], ... Used for thread-count ranges.
  std::vector<size_t> bucketize(unsigned BucketWidth,
                                unsigned MaxBucketedValue) const;

  void clear();

private:
  std::vector<size_t> Counts;
  size_t Total = 0;
};

namespace support {

/// Fixed-bucket latency recorder for hot-path tail metrics (the fleet
/// engine's per-tick latencies). Buckets are log-spaced — 8 sub-buckets
/// per power of two — covering [0, ~4.4 s) in nanoseconds with < 12.5%
/// relative error per bucket; values past the last bucket saturate into
/// it. All storage is a fixed inline array: record() never allocates,
/// never locks, and is safe to call from a shard worker as long as each
/// histogram has a single writer (share-nothing). Per-shard histograms
/// are combined at the reduction barrier with merge(), which is
/// commutative and associative, so a shard-id-ordered merge is
/// placement-independent.
class LatencyHistogram {
public:
  /// 8 linear buckets for [0,8) ns plus 29 octaves x 8 sub-buckets.
  static constexpr size_t NumBuckets = 8 + 29 * 8;

  /// Records one latency of \p Ns nanoseconds. Alloc-free, wait-free.
  void record(uint64_t Ns) {
    ++Counts[bucketIndex(Ns)];
    ++Total;
    Sum += Ns;
    if (Ns > Max)
      Max = Ns;
  }

  /// Folds \p Other into this histogram (used by the two-level fleet
  /// reduction: per-shard histograms merged in shard-id order).
  void merge(const LatencyHistogram &Other);

  /// Number of samples recorded.
  uint64_t total() const { return Total; }

  /// Sum of all recorded values (ns) and the exact maximum.
  uint64_t sum() const { return Sum; }
  uint64_t max() const { return Max; }

  /// Mean recorded value in nanoseconds (0 when empty).
  double meanNs() const {
    return Total ? static_cast<double>(Sum) / static_cast<double>(Total) : 0.0;
  }

  /// Value (ns) at quantile \p Q in [0, 1]: the upper edge of the first
  /// bucket whose cumulative count reaches ceil(Q * total). Returns 0
  /// when empty. Exact max() is reported for Q == 1 tails beyond the
  /// last occupied bucket's edge.
  uint64_t percentileNs(double Q) const;

  uint64_t p50() const { return percentileNs(0.50); }
  uint64_t p95() const { return percentileNs(0.95); }
  uint64_t p99() const { return percentileNs(0.99); }
  uint64_t p999() const { return percentileNs(0.999); }

  void clear();

  /// Bucket index for \p Ns (exposed for tests).
  static size_t bucketIndex(uint64_t Ns) {
    if (Ns < 8)
      return static_cast<size_t>(Ns);
    // Octave = position of the leading bit; the next 3 bits subdivide it.
    int Msb = 63 - __builtin_clzll(Ns);
    size_t Octave = static_cast<size_t>(Msb - 3);
    size_t Sub = static_cast<size_t>((Ns >> (Msb - 3)) & 7);
    size_t Index = 8 + Octave * 8 + Sub;
    return Index < NumBuckets ? Index : NumBuckets - 1;
  }

  /// Inclusive upper edge (ns) of bucket \p Index (exposed for tests).
  static uint64_t bucketUpperEdge(size_t Index);

private:
  std::array<uint64_t, NumBuckets> Counts{};
  uint64_t Total = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;
};

} // namespace support

} // namespace medley

#endif // MEDLEY_SUPPORT_HISTOGRAM_H
