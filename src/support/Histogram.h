//===-- support/Histogram.h - Integer histograms ----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Histogram over small non-negative integers, used to record the
/// distribution of predicted thread numbers (paper Figure 17).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_HISTOGRAM_H
#define MEDLEY_SUPPORT_HISTOGRAM_H

#include <cstddef>
#include <vector>

namespace medley {

/// Counts occurrences of integer values; grows to fit the largest value.
class Histogram {
public:
  /// Records one occurrence of \p Value.
  void add(unsigned Value);

  /// Number of samples recorded so far.
  size_t total() const { return Total; }

  /// Raw count for \p Value (0 if never seen).
  size_t count(unsigned Value) const;

  /// Fraction of samples equal to \p Value.
  double frequency(unsigned Value) const;

  /// Largest value recorded (0 if empty).
  unsigned maxValue() const;

  /// Sample mean of the recorded values.
  double meanValue() const;

  /// Value with the highest count (smallest such value on ties).
  unsigned mode() const;

  /// Returns counts grouped into buckets of width \p BucketWidth starting
  /// at value 1: [1..W], [W+1..2W], ... Used for thread-count ranges.
  std::vector<size_t> bucketize(unsigned BucketWidth,
                                unsigned MaxBucketedValue) const;

  void clear();

private:
  std::vector<size_t> Counts;
  size_t Total = 0;
};

} // namespace medley

#endif // MEDLEY_SUPPORT_HISTOGRAM_H
