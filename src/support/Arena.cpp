//===-- support/Arena.cpp - Bump allocation arena -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <cassert>
#include <cstdint>

using namespace medley::support;

Arena::Arena(size_t ChunkBytes)
    : FirstChunkBytes(ChunkBytes == 0 ? 1 : ChunkBytes) {}

void *Arena::allocate(size_t Bytes, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  for (;;) {
    uintptr_t Raw = reinterpret_cast<uintptr_t>(Ptr);
    uintptr_t Aligned = (Raw + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    size_t Padding = Aligned - Raw;
    if (Ptr && Bytes + Padding <= static_cast<size_t>(End - Ptr)) {
      Ptr = reinterpret_cast<unsigned char *>(Aligned) + Bytes;
      Used += Bytes + Padding;
      return reinterpret_cast<void *>(Aligned);
    }
    // Advance through retained chunks before growing a new one, so a
    // reset()-per-iteration loop reuses its high-water storage forever.
    if (Current + 1 < Chunks.size()) {
      ++Current;
      Ptr = Chunks[Current].Mem.get();
      End = Ptr + Chunks[Current].Size;
      continue;
    }
    grow(Bytes + Align);
  }
}

void Arena::grow(size_t AtLeast) {
  // Doubling keeps the chunk count logarithmic in the high-water mark, so
  // steady-state iterations see zero heap traffic after warm-up.
  // medley-lint: allow(hotpath-escape) — arena growth is amortized: chunks
  // are retained across reset(), so a loop stops allocating at high water.
  size_t Size = Chunks.empty() ? FirstChunkBytes : Chunks.back().Size * 2;
  if (Size < AtLeast)
    Size = AtLeast;
  Chunk C;
  C.Mem = std::make_unique<unsigned char[]>(Size);
  C.Size = Size;
  Chunks.push_back(std::move(C));
  Current = Chunks.size() - 1;
  Ptr = Chunks[Current].Mem.get();
  End = Ptr + Chunks[Current].Size;
}

void Arena::reset() {
  Used = 0;
  Current = 0;
  if (Chunks.empty()) {
    Ptr = End = nullptr;
    return;
  }
  Ptr = Chunks.front().Mem.get();
  End = Ptr + Chunks.front().Size;
}

size_t Arena::capacity() const {
  size_t Total = 0;
  for (const Chunk &C : Chunks)
    Total += C.Size;
  return Total;
}
