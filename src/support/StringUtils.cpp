//===-- support/StringUtils.cpp - String formatting helpers ---------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace medley {

std::string formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string asciiBar(double Value, double UnitsPerChar, size_t MaxChars) {
  if (Value <= 0.0 || UnitsPerChar <= 0.0)
    return "";
  size_t N = static_cast<size_t>(std::lround(Value * UnitsPerChar));
  N = std::min(N, MaxChars);
  return std::string(N, '#');
}

} // namespace medley
