//===-- support/FaultStats.h - Degradation-ladder counters ------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for every rung of the runtime's graceful-degradation ladder
/// (DESIGN.md §9): faults injected by sim::FaultInjector, feature values
/// repaired by the sanitizers, expert quarantines and re-admissions in the
/// selector, default-policy fallbacks of the mixture, thread predictions
/// clamped at the binding site, and cell retries/failures in the experiment
/// driver. Each component owns its instance (no shared mutable state);
/// merge() folds per-run instances into an aggregate on the caller's
/// thread.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_FAULTSTATS_H
#define MEDLEY_SUPPORT_FAULTSTATS_H

#include <cstdint>
#include <string>

namespace medley::support {

/// Tallies of injected faults and of the degradation responses they drew.
struct FaultStats {
  // Injected by sim::FaultInjector.
  uint64_t SensorDropouts = 0;    ///< EnvSample fields zeroed by a dropout.
  uint64_t SensorCorruptions = 0; ///< EnvSample fields set to NaN/garbage.
  uint64_t UnplugOverrides = 0;   ///< Ticks with storm-forced core counts.
  uint64_t StaleTicks = 0;        ///< Monitor updates suppressed.

  // Degradation responses.
  uint64_t SanitizedValues = 0;   ///< Non-finite feature values repaired.
  uint64_t Quarantines = 0;       ///< Experts placed in quarantine.
  uint64_t Readmissions = 0;      ///< Experts re-admitted after backoff.
  uint64_t DefaultFallbacks = 0;  ///< Mixture decisions under full quarantine.
  uint64_t ClampedPredictions = 0;///< Thread counts clamped at the binding.

  // Experiment-driver cell isolation.
  uint64_t CellRetries = 0;       ///< Re-executions of a faulted run.
  uint64_t CellFailures = 0;      ///< Runs recorded failed after retries.

  // Expert-lifecycle faults injected by sim::FaultInjector (DESIGN.md §14).
  uint64_t TornPublications = 0;    ///< Snapshot writes torn mid-publication.
  uint64_t StaleSnapshotReads = 0;  ///< Readbacks served a stale version.
  uint64_t CandidateCorruptions = 0;///< Candidate snapshots corrupted in flight.

  // Expert-lifecycle responses (registry / rollout controller).
  uint64_t SnapshotPublications = 0;///< Snapshots published to the registry.
  uint64_t SnapshotPromotions = 0;  ///< Canary snapshots promoted to live.
  uint64_t SnapshotRollbacks = 0;   ///< Canary snapshots rolled back.
  uint64_t ChecksumRejects = 0;     ///< Loads rejected on checksum mismatch.

  /// Folds \p Other into this instance.
  void merge(const FaultStats &Other);

  /// True when every counter is zero.
  bool clean() const;

  /// One-line "key=value" rendering of the non-zero counters (empty when
  /// clean), for logs and failure messages.
  std::string summary() const;
};

} // namespace medley::support

#endif // MEDLEY_SUPPORT_FAULTSTATS_H
