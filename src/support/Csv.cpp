//===-- support/Csv.cpp - CSV output ----------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include "support/StringUtils.h"

using namespace medley;

/// Appends \p Cell to \p Out, quoting when the cell contains a comma,
/// quote or newline.
static void appendCell(std::string &Out, const std::string &Cell) {
  bool NeedsQuoting = Cell.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuoting) {
    Out += Cell;
    return;
  }
  Out += '"';
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
}

void CsvWriter::emitRow() {
  Row += '\n';
  if (BufferBytes == 0) {
    OS << Row;
    return;
  }
  Buffer += Row;
  if (Buffer.size() >= BufferBytes)
    flush();
}

void CsvWriter::flush() {
  if (Buffer.empty())
    return;
  OS << Buffer;
  Buffer.clear();
}

void CsvWriter::writeRow(const std::vector<std::string> &Cells) {
  Row.clear();
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (I != 0)
      Row += ',';
    appendCell(Row, Cells[I]);
  }
  emitRow();
}

void CsvWriter::writeRow(const std::string &Label,
                         const std::vector<double> &Values, int Precision) {
  Row.clear();
  appendCell(Row, Label);
  for (double V : Values) {
    Row += ',';
    Row += formatDouble(V, Precision); // Numbers never need quoting.
  }
  emitRow();
}
