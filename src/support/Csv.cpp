//===-- support/Csv.cpp - CSV output ----------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include "support/StringUtils.h"

using namespace medley;

static std::string escapeCell(const std::string &Cell) {
  bool NeedsQuoting = Cell.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuoting)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

void CsvWriter::writeRow(const std::vector<std::string> &Cells) {
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (I != 0)
      OS << ',';
    OS << escapeCell(Cells[I]);
  }
  OS << '\n';
}

void CsvWriter::writeRow(const std::string &Label,
                         const std::vector<double> &Values, int Precision) {
  std::vector<std::string> Cells;
  Cells.reserve(Values.size() + 1);
  Cells.push_back(Label);
  for (double V : Values)
    Cells.push_back(formatDouble(V, Precision));
  writeRow(Cells);
}
