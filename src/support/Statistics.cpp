//===-- support/Statistics.cpp - Summary statistics -----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace medley {

double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double harmonicMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "harmonic mean requires positive values");
    Sum += 1.0 / V;
  }
  return static_cast<double>(Values.size()) / Sum;
}

double geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
}

double stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return std::sqrt(Sum / static_cast<double>(Values.size() - 1));
}

double minOf(const std::vector<double> &Values) {
  assert(!Values.empty() && "minOf on empty range");
  return *std::min_element(Values.begin(), Values.end());
}

double maxOf(const std::vector<double> &Values) {
  assert(!Values.empty() && "maxOf on empty range");
  return *std::max_element(Values.begin(), Values.end());
}

void RunningStat::add(double X) {
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Ema::Ema(double TimeConstant) : TimeConstant(TimeConstant) {
  assert(TimeConstant > 0.0 && "EMA time-constant must be positive");
}

void Ema::update(double X, double Dt) {
  assert(Dt > 0.0 && "EMA interval must be positive");
  if (!Primed) {
    Value = X;
    Primed = true;
    return;
  }
  if (Dt != LastDt) {
    LastAlpha = 1.0 - std::exp(-Dt / TimeConstant);
    LastDt = Dt;
  }
  Value += LastAlpha * (X - Value);
}

void Ema::reset() {
  Value = 0.0;
  Primed = false;
}

} // namespace medley
