//===-- support/Fnv.h - FNV-1a content hashing ------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity: A Mixture of
// Experts Approach for Runtime Mapping in Dynamic Environments" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit FNV-1a content hashing, shared by the expert registry's snapshot
/// checksums and the ExpertIo on-disk format (DESIGN.md §14.4). The hash is
/// incremental: start from fnv1aInit(), feed bytes through fnv1aUpdate, and
/// the running value is the checksum at any prefix. A streamed hash over a
/// file's payload therefore equals fnv1aBytes over the same bytes, which is
/// what makes write-side (stream while serialising) and read-side (hash the
/// reloaded payload) checksums comparable.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_FNV_H
#define MEDLEY_SUPPORT_FNV_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace medley::support {

/// FNV-1a 64-bit offset basis.
constexpr uint64_t Fnv1aOffsetBasis = 14695981039346656037ULL;
/// FNV-1a 64-bit prime.
constexpr uint64_t Fnv1aPrime = 1099511628211ULL;

/// Starting value for an incremental FNV-1a hash.
constexpr uint64_t fnv1aInit() { return Fnv1aOffsetBasis; }

/// Folds one byte into a running FNV-1a hash.
constexpr uint64_t fnv1aUpdate(uint64_t Hash, unsigned char Byte) {
  return (Hash ^ static_cast<uint64_t>(Byte)) * Fnv1aPrime;
}

/// Folds \p Size raw bytes into a running FNV-1a hash.
inline uint64_t fnv1aUpdate(uint64_t Hash, const void *Data, size_t Size) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I)
    Hash = fnv1aUpdate(Hash, Bytes[I]);
  return Hash;
}

/// FNV-1a over \p Size raw bytes.
inline uint64_t fnv1aBytes(const void *Data, size_t Size) {
  return fnv1aUpdate(fnv1aInit(), Data, Size);
}

/// FNV-1a over the bytes of \p Data.
inline uint64_t fnv1aString(const std::string &Data) {
  return fnv1aBytes(Data.data(), Data.size());
}

} // namespace medley::support

#endif // MEDLEY_SUPPORT_FNV_H
