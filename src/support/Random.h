//===-- support/Random.h - Deterministic random numbers ---------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component of the simulator draws from an
/// explicitly seeded Rng so experiments are reproducible run-to-run and
/// repeats differ only by their seed.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_RANDOM_H
#define MEDLEY_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace medley {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Not thread-safe; each simulation owns its own instance.
class Rng {
public:
  /// Seeds the full state from \p Seed via splitmix64.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [\p Lo, \p Hi).
  double uniform(double Lo, double Hi);

  /// Returns an integer uniformly distributed in [\p Lo, \p Hi] inclusive.
  int64_t uniformInt(int64_t Lo, int64_t Hi);

  /// Returns a sample from a normal distribution (Box-Muller).
  double normal(double Mean = 0.0, double Stddev = 1.0);

  /// Returns true with probability \p P.
  bool bernoulli(double P);

  /// Returns a reference to a uniformly chosen element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "cannot pick from an empty vector");
    return Items[static_cast<size_t>(uniformInt(0, Items.size() - 1))];
  }

  /// Fisher-Yates shuffle of \p Items.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(uniformInt(0, static_cast<int64_t>(I) - 1));
      std::swap(Items[I - 1], Items[J]);
    }
  }

  /// Derives an independent generator; used to give each repeat of an
  /// experiment its own stream while staying reproducible.
  Rng split();

private:
  uint64_t State[4];

  // Cached second value of the Box-Muller pair.
  bool HasSpare = false;
  double Spare = 0.0;
};

} // namespace medley

#endif // MEDLEY_SUPPORT_RANDOM_H
