//===-- support/Csv.h - CSV output ------------------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV writer so bench binaries can optionally dump machine-readable
/// series alongside the human-readable tables.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_CSV_H
#define MEDLEY_SUPPORT_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace medley {

/// Streams rows of comma-separated values, quoting cells that need it.
class CsvWriter {
public:
  explicit CsvWriter(std::ostream &OS) : OS(OS) {}

  /// Writes one row; cells containing commas, quotes or newlines are quoted.
  void writeRow(const std::vector<std::string> &Cells);

  /// Convenience for a label followed by numeric columns.
  void writeRow(const std::string &Label, const std::vector<double> &Values,
                int Precision = 4);

private:
  std::ostream &OS;
};

} // namespace medley

#endif // MEDLEY_SUPPORT_CSV_H
