//===-- support/Csv.h - CSV output ------------------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV writer so bench binaries can optionally dump machine-readable
/// series alongside the human-readable tables.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_CSV_H
#define MEDLEY_SUPPORT_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace medley {

/// Streams rows of comma-separated values, quoting cells that need it.
///
/// Each row is assembled in a reused scratch string and handed to the
/// stream as one write, not one write per cell. With \p BufferBytes > 0
/// rows additionally accumulate in an internal buffer that is flushed to
/// the stream only when it exceeds that size (and on flush()/destruction),
/// so emitting thousands of rows costs a handful of stream operations.
class CsvWriter {
public:
  /// \p BufferBytes = 0 (the default) writes each row through immediately;
  /// larger values batch rows until the buffer exceeds the threshold.
  explicit CsvWriter(std::ostream &OS, size_t BufferBytes = 0)
      : OS(OS), BufferBytes(BufferBytes) {}

  CsvWriter(const CsvWriter &) = delete;
  CsvWriter &operator=(const CsvWriter &) = delete;

  ~CsvWriter() { flush(); }

  /// Writes one row; cells containing commas, quotes or newlines are quoted.
  void writeRow(const std::vector<std::string> &Cells);

  /// Convenience for a label followed by numeric columns.
  void writeRow(const std::string &Label, const std::vector<double> &Values,
                int Precision = 4);

  /// Drains any buffered rows to the stream.
  void flush();

private:
  /// Emits the assembled Row (newline included) honouring the buffer.
  void emitRow();

  std::ostream &OS;
  size_t BufferBytes;
  std::string Row;    ///< Scratch: the row being assembled, reused.
  std::string Buffer; ///< Pending rows when BufferBytes > 0.
};

} // namespace medley

#endif // MEDLEY_SUPPORT_CSV_H
