//===-- support/Table.cpp - Aligned text tables ----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace medley;

Table::Table(std::string Title) : Title(std::move(Title)) {}

void Table::addRow() { Rows.emplace_back(); }

void Table::addCell(const std::string &Text) {
  assert(!Rows.empty() && "addRow must be called before addCell");
  Rows.back().push_back(Text);
}

void Table::addCell(double Value, int Precision) {
  addCell(formatDouble(Value, Precision));
}

void Table::addCell(int Value) { addCell(std::to_string(Value)); }

void Table::addCell(unsigned Value) { addCell(std::to_string(Value)); }

void Table::addRow(const std::vector<std::string> &Cells) {
  addRow();
  for (const auto &Cell : Cells)
    addCell(Cell);
}

void Table::print(std::ostream &OS) const {
  if (!Title.empty()) {
    OS << Title << '\n';
    OS << std::string(Title.size(), '=') << '\n';
  }
  if (Rows.empty())
    return;

  size_t NumCols = 0;
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      if (C != 0)
        OS << "  ";
      // Left-align the first column (labels), right-align the rest.
      OS << (C == 0 ? padRight(Row[C], Widths[C])
                    : padLeft(Row[C], Widths[C]));
    }
    OS << '\n';
  };

  printRow(Rows.front());
  size_t RuleLen = 0;
  for (size_t C = 0; C < NumCols; ++C)
    RuleLen += Widths[C] + (C == 0 ? 0 : 2);
  OS << std::string(RuleLen, '-') << '\n';
  for (size_t R = 1; R < Rows.size(); ++R)
    printRow(Rows[R]);
}
