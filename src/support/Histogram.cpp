//===-- support/Histogram.cpp - Integer histograms -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cassert>

using namespace medley;

void Histogram::add(unsigned Value) {
  if (Value >= Counts.size())
    Counts.resize(Value + 1, 0);
  ++Counts[Value];
  ++Total;
}

size_t Histogram::count(unsigned Value) const {
  if (Value >= Counts.size())
    return 0;
  return Counts[Value];
}

double Histogram::frequency(unsigned Value) const {
  if (Total == 0)
    return 0.0;
  return static_cast<double>(count(Value)) / static_cast<double>(Total);
}

unsigned Histogram::maxValue() const {
  for (size_t I = Counts.size(); I > 0; --I)
    if (Counts[I - 1] != 0)
      return static_cast<unsigned>(I - 1);
  return 0;
}

double Histogram::meanValue() const {
  if (Total == 0)
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0; I < Counts.size(); ++I)
    Sum += static_cast<double>(I) * static_cast<double>(Counts[I]);
  return Sum / static_cast<double>(Total);
}

unsigned Histogram::mode() const {
  size_t Best = 0;
  unsigned BestValue = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    if (Counts[I] > Best) {
      Best = Counts[I];
      BestValue = static_cast<unsigned>(I);
    }
  }
  return BestValue;
}

std::vector<size_t> Histogram::bucketize(unsigned BucketWidth,
                                         unsigned MaxBucketedValue) const {
  assert(BucketWidth > 0 && "bucket width must be positive");
  unsigned NumBuckets = (MaxBucketedValue + BucketWidth - 1) / BucketWidth;
  std::vector<size_t> Buckets(NumBuckets, 0);
  for (size_t V = 1; V < Counts.size(); ++V) {
    unsigned Bucket = (static_cast<unsigned>(V) - 1) / BucketWidth;
    Bucket = std::min(Bucket, NumBuckets - 1);
    Buckets[Bucket] += Counts[V];
  }
  return Buckets;
}

void Histogram::clear() {
  Counts.clear();
  Total = 0;
}

void support::LatencyHistogram::merge(const LatencyHistogram &Other) {
  for (size_t I = 0; I < NumBuckets; ++I)
    Counts[I] += Other.Counts[I];
  Total += Other.Total;
  Sum += Other.Sum;
  Max = std::max(Max, Other.Max);
}

uint64_t support::LatencyHistogram::bucketUpperEdge(size_t Index) {
  assert(Index < NumBuckets && "bucket index out of range");
  if (Index < 8)
    return static_cast<uint64_t>(Index);
  size_t Octave = (Index - 8) / 8;
  size_t Sub = (Index - 8) % 8;
  // Bucket [8 + o*8 + s] holds values in [2^(o+3) + s*2^o, ... + 2^o).
  uint64_t Base = 1ULL << (Octave + 3);
  uint64_t Step = 1ULL << Octave;
  return Base + (Sub + 1) * Step - 1;
}

uint64_t support::LatencyHistogram::percentileNs(double Q) const {
  if (Total == 0)
    return 0;
  Q = std::clamp(Q, 0.0, 1.0);
  // Rank of the requested sample, 1-based; ceil without FP edge cases.
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
  if (static_cast<double>(Rank) < Q * static_cast<double>(Total))
    ++Rank;
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  size_t LastOccupied = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    if (Counts[I] == 0)
      continue;
    LastOccupied = I;
    Seen += Counts[I];
    if (Seen >= Rank) {
      // Inside the saturated tail bucket the edge underestimates; the
      // recorded maximum is the only honest answer there.
      if (I == NumBuckets - 1)
        return Max;
      return std::min(bucketUpperEdge(I), Max);
    }
  }
  return std::min(bucketUpperEdge(LastOccupied), Max);
}
