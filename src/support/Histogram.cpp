//===-- support/Histogram.cpp - Integer histograms -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cassert>

using namespace medley;

void Histogram::add(unsigned Value) {
  if (Value >= Counts.size())
    Counts.resize(Value + 1, 0);
  ++Counts[Value];
  ++Total;
}

size_t Histogram::count(unsigned Value) const {
  if (Value >= Counts.size())
    return 0;
  return Counts[Value];
}

double Histogram::frequency(unsigned Value) const {
  if (Total == 0)
    return 0.0;
  return static_cast<double>(count(Value)) / static_cast<double>(Total);
}

unsigned Histogram::maxValue() const {
  for (size_t I = Counts.size(); I > 0; --I)
    if (Counts[I - 1] != 0)
      return static_cast<unsigned>(I - 1);
  return 0;
}

double Histogram::meanValue() const {
  if (Total == 0)
    return 0.0;
  double Sum = 0.0;
  for (size_t I = 0; I < Counts.size(); ++I)
    Sum += static_cast<double>(I) * static_cast<double>(Counts[I]);
  return Sum / static_cast<double>(Total);
}

unsigned Histogram::mode() const {
  size_t Best = 0;
  unsigned BestValue = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    if (Counts[I] > Best) {
      Best = Counts[I];
      BestValue = static_cast<unsigned>(I);
    }
  }
  return BestValue;
}

std::vector<size_t> Histogram::bucketize(unsigned BucketWidth,
                                         unsigned MaxBucketedValue) const {
  assert(BucketWidth > 0 && "bucket width must be positive");
  unsigned NumBuckets = (MaxBucketedValue + BucketWidth - 1) / BucketWidth;
  std::vector<size_t> Buckets(NumBuckets, 0);
  for (size_t V = 1; V < Counts.size(); ++V) {
    unsigned Bucket = (static_cast<unsigned>(V) - 1) / BucketWidth;
    Bucket = std::min(Bucket, NumBuckets - 1);
    Buckets[Bucket] += Counts[V];
  }
  return Buckets;
}

void Histogram::clear() {
  Counts.clear();
  Total = 0;
}
