//===-- support/Random.cpp - Deterministic random numbers -----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cmath>

using namespace medley;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Rng::Rng(uint64_t Seed) {
  uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform() {
  // 53-bit mantissa yields a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "invalid uniform range");
  return Lo + (Hi - Lo) * uniform();
}

int64_t Rng::uniformInt(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "invalid uniformInt range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range requested.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(next() % Span);
}

double Rng::normal(double Mean, double Stddev) {
  if (HasSpare) {
    HasSpare = false;
    return Mean + Stddev * Spare;
  }
  double U, V, S;
  do {
    U = uniform(-1.0, 1.0);
    V = uniform(-1.0, 1.0);
    S = U * U + V * V;
    // Marsaglia polar rejection: S == 0 would divide by zero below, and
    // only the exact value does. medley-lint: allow(float-equality)
  } while (S >= 1.0 || S == 0.0);
  double Factor = std::sqrt(-2.0 * std::log(S) / S);
  Spare = V * Factor;
  HasSpare = true;
  return Mean + Stddev * U * Factor;
}

bool Rng::bernoulli(double P) { return uniform() < P; }

Rng Rng::split() { return Rng(next()); }
