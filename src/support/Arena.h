//===-- support/Arena.h - Bump allocation arena -----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A region (bump) allocator for short-lived, per-iteration transients.
/// Allocation is a pointer increment; reset() rewinds the arena in O(1)
/// while retaining every chunk it has ever grown, so a loop that resets
/// the arena each iteration stops touching the heap entirely once the
/// high-water mark is reached. The simulator resets its tick arena at the
/// top of every tick (DESIGN.md §13); nothing allocated from the arena
/// may outlive that reset.
///
/// Objects placed in the arena are NOT destroyed — only trivially
/// destructible payloads (indices, samples, plain structs) belong here.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_ARENA_H
#define MEDLEY_SUPPORT_ARENA_H

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace medley::support {

/// Chunked bump allocator; see the file comment for the lifetime contract.
class Arena {
public:
  /// \p ChunkBytes is the size of the first chunk; later chunks at least
  /// double, so any allocation pattern settles into a bounded chunk list.
  explicit Arena(size_t ChunkBytes = 4096);

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align (a power of two).
  /// Grows by a fresh chunk only when every retained chunk is exhausted.
  void *allocate(size_t Bytes, size_t Align);

  /// Typed convenience: uninitialised storage for \p N objects of \p T.
  /// T must be trivially destructible (the arena never runs destructors).
  template <typename T> T *allocateArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty without releasing memory: O(1), no heap traffic.
  void reset();

  /// Total bytes owned across all chunks (the high-water capacity).
  size_t capacity() const;

  /// Bytes handed out since the last reset (including alignment padding).
  size_t used() const { return Used; }

  /// Number of chunks grown so far (1 after the first allocation).
  size_t numChunks() const { return Chunks.size(); }

private:
  /// Appends a chunk of at least \p AtLeast bytes and makes it current.
  void grow(size_t AtLeast);

  struct Chunk {
    std::unique_ptr<unsigned char[]> Mem;
    size_t Size = 0;
  };

  std::vector<Chunk> Chunks;
  size_t Current = 0;        ///< Index of the chunk being bumped.
  unsigned char *Ptr = nullptr; ///< Next free byte in the current chunk.
  unsigned char *End = nullptr; ///< One past the current chunk's storage.
  size_t FirstChunkBytes;
  size_t Used = 0;
};

} // namespace medley::support

#endif // MEDLEY_SUPPORT_ARENA_H
