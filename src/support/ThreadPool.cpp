//===-- support/ThreadPool.cpp - Worker pool for experiment cells --------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <string>

using namespace medley;
using namespace medley::support;

namespace {

/// True while this thread is executing a parallelFor body. Nested
/// parallelFor calls run inline instead of re-entering the pool: a worker
/// blocking on a nested region's completion could deadlock a fully busy
/// pool, and the cells this pool exists for are independent anyway.
thread_local bool InsideParallelBody = false;

} // namespace

unsigned ThreadPool::maxSaneJobs() { return 1024; }

unsigned ThreadPool::defaultJobs() {
  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  const char *Env = std::getenv("MEDLEY_JOBS");
  if (!Env || *Env == '\0')
    return Hardware;
  // A malformed or absurd MEDLEY_JOBS (non-numeric, trailing junk, zero,
  // negative, overflow, or more workers than any sane machine) falls back
  // to the hardware concurrency instead of crashing or spawning a thread
  // per digit typo.
  errno = 0;
  char *End = nullptr;
  long Jobs = std::strtol(Env, &End, 10);
  if (errno != 0 || !End || End == Env || *End != '\0')
    return Hardware;
  if (Jobs <= 0 || Jobs > static_cast<long>(maxSaneJobs()))
    return Hardware;
  return static_cast<unsigned>(Jobs);
}

ThreadPool::ThreadPool(unsigned Threads)
    : Size(Threads > 0 ? Threads : defaultJobs()) {
  // The caller participates in parallelFor, so a pool of size N needs only
  // N - 1 dedicated workers (and size 1 needs none at all).
  for (unsigned I = 1; I < Size; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.back());
      Queue.pop_back();
    }
    Task();
  }
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Size == 1) {
    Task();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.push_back(std::move(Task));
  }
  QueueReady.notify_one();
}

/// Shared state of one parallelFor: the next unclaimed index, how many
/// bodies are still running, and the first captured exception.
struct ThreadPool::ForJob {
  std::atomic<size_t> Next{0};
  size_t N = 0;
  const std::function<void(size_t)> *Body = nullptr;

  std::mutex DoneMutex;
  std::condition_variable Done;
  size_t ActiveHelpers = 0;

  std::mutex ErrorMutex;
  std::exception_ptr FirstError;

  void run() {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        InsideParallelBody = true;
        (*Body)(I);
        InsideParallelBody = false;
      } catch (...) {
        InsideParallelBody = false;
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
  }
};

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (Size == 1 || N == 1 || InsideParallelBody) {
    // Inline sequential path: same iteration order, no queue traffic.
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  auto Job = std::make_shared<ForJob>();
  Job->N = N;
  Job->Body = &Body;

  // One helper task per worker that could usefully participate; each
  // helper (and the caller) pulls indices until the range is exhausted.
  size_t Helpers = std::min<size_t>(Workers.size(), N - 1);
  Job->ActiveHelpers = Helpers;
  for (size_t H = 0; H < Helpers; ++H)
    submit([Job] {
      Job->run();
      std::lock_guard<std::mutex> Lock(Job->DoneMutex);
      if (--Job->ActiveHelpers == 0)
        Job->Done.notify_all();
    });

  Job->run();

  std::unique_lock<std::mutex> Lock(Job->DoneMutex);
  Job->Done.wait(Lock, [&Job] { return Job->ActiveHelpers == 0; });

  if (Job->FirstError)
    std::rethrow_exception(Job->FirstError);
}
