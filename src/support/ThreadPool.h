//===-- support/ThreadPool.h - Worker pool for experiment cells -*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool used to execute independent experiment
/// cells concurrently. Work is distributed by an atomic index grab
/// (dynamic self-scheduling), so uneven cell durations balance themselves
/// without an explicit work-stealing deque. The calling thread joins the
/// workers for the duration of a parallelFor, exceptions thrown by the
/// body are captured and rethrown on the caller, and a pool of size 1 runs
/// everything inline — the degenerate case is exactly a sequential loop.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SUPPORT_THREADPOOL_H
#define MEDLEY_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace medley::support {

/// Fixed-size pool of worker threads executing queued tasks.
class ThreadPool {
public:
  /// Creates \p Threads workers; 0 means defaultJobs().
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of threads that execute work (including the caller during a
  /// parallelFor); always >= 1.
  unsigned size() const { return Size; }

  /// Runs \p Body(I) for every I in [0, N). Indices are handed out
  /// dynamically, one at a time, so long cells do not serialise behind
  /// short ones. Blocks until all N calls return. The first exception
  /// thrown by any invocation is rethrown here (remaining indices are
  /// still drained, their results discarded).
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// Enqueues a single fire-and-forget task on the pool.
  void submit(std::function<void()> Task);

  /// The process-wide default worker count: the MEDLEY_JOBS environment
  /// variable when set to a positive integer no larger than maxSaneJobs(),
  /// otherwise the hardware concurrency (at least 1). Malformed values
  /// (non-numeric, trailing junk, zero, negative, overflow, absurdly
  /// large) fall back to the hardware concurrency.
  static unsigned defaultJobs();

  /// Upper bound accepted from MEDLEY_JOBS before falling back.
  static unsigned maxSaneJobs();

private:
  struct ForJob;

  void workerLoop();

  unsigned Size;
  std::vector<std::thread> Workers;
  std::mutex QueueMutex;
  std::condition_variable QueueReady;
  std::vector<std::function<void()>> Queue;
  bool Stopping = false;
};

} // namespace medley::support

#endif // MEDLEY_SUPPORT_THREADPOOL_H
