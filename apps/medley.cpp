//===-- apps/medley.cpp - Command-line driver -----------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The command-line front end:
//
//   medley list
//       Programs, policies and scenarios available.
//   medley speedup --target cg --policy mixture --scenario large/low
//       Speedup of a policy over the OpenMP default in a paper scenario.
//   medley coexec --target cg --policy mixture --workload bt,is,art
//                 [--cores 32] [--period 20] [--timeline]
//       One co-execution run with an explicit workload; optionally prints
//       the decision timeline.
//   medley experts [--num 4]
//       The trained experts: split, sample counts, weights.
//   medley lifecycle --target cg --workload bt,is [--retrain-window 512]
//                    [--canary-fraction 1.0] [--rollback-strikes 3]
//       The hot expert lifecycle end to end: a baseline run records a
//       trace, a background worker refits the experts from it, and a
//       second run drives the candidate through shadow -> canary ->
//       promote (or auto-rollback) against the live registry.
//
//===----------------------------------------------------------------------===//

#include "core/ExpertIo.h"
#include "core/ExpertTrainer.h"
#include "core/LiveMixture.h"
#include "support/ThreadPool.h"
#include "exp/Driver.h"
#include "exp/Fleet.h"
#include "exp/PolicySet.h"
#include "exp/Reporter.h"
#include "policy/Features.h"
#include "runtime/CoExecution.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "trace/Columnar.h"
#include "workload/Catalog.h"

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

using namespace medley;

namespace {

/// Trivial --key value / --flag argument map.
class Args {
public:
  Args(int Argc, char **Argv) {
    for (int I = 2; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument '" << Arg << "'\n";
        Ok = false;
        continue;
      }
      std::string Key = Arg.substr(2);
      if (I + 1 < Argc && std::string(Argv[I + 1]).rfind("--", 0) != 0)
        Values[Key] = Argv[++I];
      else
        Values[Key] = "";
    }
  }

  bool valid() const { return Ok; }
  bool has(const std::string &Key) const { return Values.count(Key) != 0; }

  std::string get(const std::string &Key,
                  const std::string &Default = "") const {
    auto It = Values.find(Key);
    return It == Values.end() ? Default : It->second;
  }

  unsigned getUnsigned(const std::string &Key, unsigned Default) const {
    auto It = Values.find(Key);
    return It == Values.end() ? Default
                              : static_cast<unsigned>(std::stoul(It->second));
  }

  double getDouble(const std::string &Key, double Default) const {
    auto It = Values.find(Key);
    return It == Values.end() ? Default : std::stod(It->second);
  }

private:
  std::map<std::string, std::string> Values;
  bool Ok = true;
};

std::vector<std::string> splitList(const std::string &Csv) {
  std::vector<std::string> Out;
  std::istringstream SS(Csv);
  std::string Item;
  while (std::getline(SS, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

exp::Scenario scenarioByName(const std::string &Name) {
  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios())
    if (S.Name == Name)
      return S;
  if (Name == exp::Scenario::isolatedStatic().Name)
    return exp::Scenario::isolatedStatic();
  if (Name == exp::Scenario::liveStudy().Name)
    return exp::Scenario::liveStudy();
  std::cerr << "unknown scenario '" << Name
            << "' (try: isolated/static, small/low, small/high, "
               "large/low, large/high, live-study)\n";
  std::exit(1);
}

int cmdList() {
  std::cout << "policies:  default online offline analytic mixture\n";
  std::cout << "scenarios: isolated/static";
  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios())
    std::cout << ' ' << S.Name;
  std::cout << " live-study\n\nprograms:\n";
  Table T;
  T.addRow({"name", "suite", "serial work", "iterations", "ws (MB)"});
  for (const workload::ProgramSpec &Spec :
       workload::Catalog::allPrograms()) {
    T.addRow();
    T.addCell(Spec.Name);
    T.addCell(Spec.Suite);
    T.addCell(Spec.totalWork(), 0);
    T.addCell(Spec.Iterations);
    T.addCell(Spec.WorkingSetMb, 0);
  }
  T.print(std::cout);
  return 0;
}

int cmdSpeedup(const Args &A) {
  std::string Target = A.get("target", "cg");
  std::string Policy = A.get("policy", "mixture");
  exp::Scenario Scen = scenarioByName(A.get("scenario", "large/low"));
  if (!workload::Catalog::contains(Target)) {
    std::cerr << "unknown target '" << Target << "'\n";
    return 1;
  }

  exp::DriverOptions Options;
  Options.Repeats = A.getUnsigned("repeats", 3);
  Options.Jobs = A.getUnsigned("jobs", 0); // 0 = MEDLEY_JOBS / hardware.
  exp::Driver Driver(Options);
  exp::PolicySet &Policies = exp::PolicySet::instance();
  double S = Driver.speedup(Target, Policies.factory(Policy), Scen);
  std::cout << Target << " under '" << Policy << "' in " << Scen.Name
            << ": " << formatDouble(S, 2) << "x over the OpenMP default\n";
  return 0;
}

/// Writes \p Trace to \p Path in the requested format: "columnar" is the
/// binary format recorded at run time; "csv" runs the export post-pass
/// immediately instead of leaving it for `medley trace-export`.
int writeTrace(const trace::TickTrace &Trace, const std::string &Path,
               const std::string &Format) {
  if (Format == "columnar") {
    if (support::Error E = trace::ColumnarWriter::writeFile(Trace, Path)) {
      std::cerr << E.str() << '\n';
      return 1;
    }
  } else if (Format == "csv") {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    if (!OS) {
      std::cerr << "cannot open trace file for writing: " << Path << '\n';
      return 1;
    }
    trace::exportCsv(Trace, OS);
    if (!OS) {
      std::cerr << "trace CSV write failed: " << Path << '\n';
      return 1;
    }
  } else {
    std::cerr << "unknown trace format '" << Format
              << "' (try: columnar, csv)\n";
    return 1;
  }
  std::cout << "  trace: " << Trace.size() << " ticks -> " << Path << " ("
            << Format << ")\n";
  return 0;
}

int cmdCoexec(const Args &A) {
  std::string Target = A.get("target", "cg");
  std::string Policy = A.get("policy", "mixture");
  std::vector<std::string> Workload =
      splitList(A.get("workload", "bt,is"));
  for (const std::string &Name : Workload)
    if (!workload::Catalog::contains(Name)) {
      std::cerr << "unknown workload program '" << Name << "'\n";
      return 1;
    }

  runtime::CoExecutionConfig Config;
  unsigned Cores = A.getUnsigned("cores", 32);
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  Config.Machine.TotalCores = Cores;
  Config.Machine.MemoryBandwidth = 0.45 * Cores;
  double Period = A.getDouble("period", 20.0);
  uint64_t Seed = A.getUnsigned("seed", 42);
  Config.Availability = [Cores, Period, Seed] {
    return sim::PeriodicAvailability::standardLadder(Cores, Period, Seed);
  };
  Config.WorkloadSeed = Seed;
  Config.WorkloadMaxThreads = std::max(2u, Cores * 5 / 16);
  Config.RecordTraces = A.has("trace-out");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  auto P = Policies.factory(Policy)();
  runtime::CoExecutionResult R =
      runCoExecution(Config, workload::Catalog::byName(Target), *P,
                     runtime::patternWorkload(Workload));

  std::cout << "target " << Target << " under '" << Policy << "' with {"
            << join(Workload, ", ") << "} on " << Cores << " cores:\n";
  std::cout << "  completion: " << formatDouble(R.TargetTime, 1) << " s ("
            << R.TargetRegions << " region executions)\n";
  std::cout << "  workload throughput: "
            << formatDouble(R.WorkloadThroughput, 2) << " work units/s\n";

  if (A.has("trace-out"))
    if (int Rc = writeTrace(R.Trace, A.get("trace-out"),
                            A.get("trace-format", "columnar")))
      return Rc;

  if (A.has("timeline")) {
    std::cout << "\n  t(s)  threads\n";
    double Last = -1e9;
    for (const runtime::Decision &D : R.TargetDecisions) {
      if (D.Time - Last < 2.0)
        continue;
      Last = D.Time;
      std::cout << "  " << padLeft(formatDouble(D.Time, 1), 5) << "  "
                << padLeft(std::to_string(D.Threads), 7) << "  "
                << asciiBar(D.Threads, 1.5) << '\n';
    }
  }
  return 0;
}

int cmdTraceExport(const Args &A) {
  if (!A.has("in")) {
    std::cerr << "trace-export needs --in FILE (a columnar trace)\n";
    return 1;
  }
  trace::TickTrace Trace;
  support::Error Err;
  if (!trace::ColumnarReader::readFile(A.get("in"), Trace, &Err)) {
    std::cerr << Err.str() << '\n';
    return 1;
  }
  if (A.has("out")) {
    std::ofstream OS(A.get("out"), std::ios::binary | std::ios::trunc);
    if (!OS) {
      std::cerr << "cannot open '" << A.get("out") << "' for writing\n";
      return 1;
    }
    trace::exportCsv(Trace, OS);
    if (!OS) {
      std::cerr << "trace CSV write failed: " << A.get("out") << '\n';
      return 1;
    }
    std::cerr << "exported " << Trace.size() << " ticks to " << A.get("out")
              << '\n';
  } else {
    trace::exportCsv(Trace, std::cout);
  }
  return 0;
}

int cmdExperts(const Args &A) {
  // Load pre-trained experts from a file instead of training.
  if (A.has("load")) {
    auto Loaded = core::loadExpertsFromFile(A.get("load"));
    if (!Loaded) {
      std::cerr << "failed to load experts from '" << A.get("load") << "'\n";
      return 1;
    }
    Table T;
    T.addRow({"expert", "regime", "mean ||e||", "w R2", "m R2"});
    for (const core::Expert &E : *Loaded) {
      T.addRow();
      T.addCell(E.name());
      T.addCell(E.description());
      T.addCell(E.meanTrainingEnv());
      T.addCell(E.threadModel()->trainingR2());
      T.addCell(E.envModel()->trainingR2());
    }
    T.print(std::cout);
    return 0;
  }

  unsigned K = A.getUnsigned("num", 4);
  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &Built = Policies.builtExperts(K);

  if (A.has("save")) {
    std::vector<core::Expert> Experts;
    for (const core::BuiltExpert &B : Built)
      Experts.push_back(B.E);
    if (!core::saveExpertsToFile(A.get("save"), Experts)) {
      std::cerr << "failed to save experts to '" << A.get("save") << "'\n";
      return 1;
    }
    std::cout << "saved " << Experts.size() << " experts to "
              << A.get("save") << '\n';
    return 0;
  }

  Table T;
  T.addRow({"expert", "regime", "thread samples", "env samples",
            "mean ||e||", "w R2", "m R2"});
  for (const core::BuiltExpert &B : Built) {
    T.addRow();
    T.addCell(B.E.name());
    T.addCell(B.E.description());
    T.addCell(static_cast<unsigned>(B.ThreadData.size()));
    T.addCell(static_cast<unsigned>(B.EnvData.size()));
    T.addCell(B.E.meanTrainingEnv());
    T.addCell(B.E.threadModel()->trainingR2());
    T.addCell(B.E.envModel()->trainingR2());
  }
  T.print(std::cout);
  return 0;
}

int cmdLifecycle(const Args &A) {
  std::string Target = A.get("target", "cg");
  std::vector<std::string> Workload = splitList(A.get("workload", "bt,is"));
  if (!workload::Catalog::contains(Target)) {
    std::cerr << "unknown target '" << Target << "'\n";
    return 1;
  }
  for (const std::string &Name : Workload)
    if (!workload::Catalog::contains(Name)) {
      std::cerr << "unknown workload program '" << Name << "'\n";
      return 1;
    }

  runtime::CoExecutionConfig Config;
  unsigned Cores = A.getUnsigned("cores", 32);
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  Config.Machine.TotalCores = Cores;
  Config.Machine.MemoryBandwidth = 0.45 * Cores;
  double Period = A.getDouble("period", 20.0);
  uint64_t Seed = A.getUnsigned("seed", 42);
  Config.Availability = [Cores, Period, Seed] {
    return sim::PeriodicAvailability::standardLadder(Cores, Period, Seed);
  };
  Config.WorkloadSeed = Seed;
  Config.WorkloadMaxThreads = std::max(2u, Cores * 5 / 16);
  Config.RecordTraces = true;

  exp::PolicySet &Policies = exp::PolicySet::instance();
  auto Registry = Policies.liveRegistry();

  core::RolloutOptions Rollout;
  Rollout.ShadowWindow = A.getUnsigned("shadow-window", 128);
  Rollout.PromoteFraction = A.getDouble("promote-fraction", 0.55);
  Rollout.CanaryFraction = A.getDouble("canary-fraction", 1.0);
  Rollout.CanaryWindow = A.getUnsigned("canary-window", 256);
  Rollout.RollbackStrikes = A.getUnsigned("rollback-strikes", 3);
  Rollout.DivergenceFactor = A.getDouble("divergence-factor", 3.0);
  Rollout.AbsoluteErrorFloor = A.getDouble("error-floor", 0.5);

  support::FaultStats Faults;
  auto Controller =
      std::make_shared<core::RolloutController>(Registry, Rollout, &Faults);
  auto Policy =
      Policies.liveMixtureFactory(4, "regime", Controller, {}, &Faults)();

  // Phase 1: baseline run under the seed snapshot, recording the trace the
  // trainer will refit from.
  runtime::CoExecutionResult Baseline =
      runCoExecution(Config, workload::Catalog::byName(Target), *Policy,
                     runtime::patternWorkload(Workload));
  std::cout << "baseline (snapshot v" << Registry->epoch() << "): "
            << formatDouble(Baseline.TargetTime, 1) << " s ("
            << Baseline.TargetRegions << " regions, "
            << Baseline.Trace.size() << " trace ticks)\n";

  // Background refit from the recorded window; the candidate lands in the
  // rollout mailbox through the thread-safe hand-off. The pool is drained
  // (dtor) before phase 2 so the demo stays deterministic.
  core::TrainerOptions TrainerOptions;
  TrainerOptions.Window.Window = A.getUnsigned("retrain-window", 512);
  core::ExpertTrainer Trainer(TrainerOptions);
  bool HaveCandidate = false;
  {
    support::ThreadPool Pool(1);
    Trainer.retrainAsync(
        Pool, Baseline.Trace, Registry->current(),
        [&](std::optional<std::vector<core::Expert>> Candidate) {
          if (Candidate) {
            HaveCandidate = true;
            Controller->submitCandidate(std::move(*Candidate));
          }
        });
  }
  if (!HaveCandidate) {
    std::cout << "retrain: window too thin to refit any expert; "
                 "no candidate staged\n";
    return 0;
  }
  std::cout << "retrain: candidate from the last "
            << TrainerOptions.Window.Window << "-tick window staged\n";

  // Phase 2: the rollout run. The same policy instance keeps its selector
  // state; the candidate shadow-scores, then (maybe) goes live as canary.
  runtime::CoExecutionResult Live =
      runCoExecution(Config, workload::Catalog::byName(Target), *Policy,
                     runtime::patternWorkload(Workload));
  Controller->maintain(); // Settle a verdict reached on the last decision.

  auto &Mixture = static_cast<core::LiveMixture &>(*Policy);
  std::cout << "rollout run: " << formatDouble(Live.TargetTime, 1) << " s ("
            << Live.TargetRegions << " regions)\n";
  std::cout << "  state: " << core::rolloutStateName(Controller->state())
            << "  (promotions " << Controller->promotions() << ", rollbacks "
            << Controller->rollbacks() << ", shadow rejects "
            << Controller->shadowRejects() << ")\n";
  std::cout << "  registry: v" << Registry->epoch() << " published, policy on v"
            << Mixture.boundVersion() << " after " << Mixture.swaps()
            << " swap(s)\n";

  if (A.has("snapshot-out")) {
    support::Error Err;
    if (!core::saveSnapshotToFile(A.get("snapshot-out"),
                                  *Registry->current(), &Err, nullptr,
                                  &Faults)) {
      std::cerr << Err.str() << '\n';
      return 1;
    }
    std::cout << "  snapshot v" << Registry->epoch() << " -> "
              << A.get("snapshot-out") << '\n';
  }
  return 0;
}

int cmdFleet(const Args &A) {
  exp::FleetScenarioConfig Config;
  Config.Shards = A.getUnsigned("shards", 16);
  Config.Tenants = A.getUnsigned("tenants", 10000);
  Config.Rounds = A.getUnsigned("rounds", 8);
  Config.TicksPerRound = A.getUnsigned("ticks", 25);
  Config.ChurnRate = A.getDouble("churn", 0.01);
  Config.Seed = A.getUnsigned("seed", 0xF1EE7);
  Config.StormShards = A.getUnsigned("storm-shards", 0);
  Config.Policy = A.get("policy", "mixture");
  Config.Memoize = A.has("memoize");
  Config.TenantMaxThreads = A.getUnsigned("tenant-threads", 8);
  Config.Jobs = A.getUnsigned("jobs", 0);
  if (Config.Shards == 0 || Config.Tenants == 0) {
    std::cerr << "fleet needs at least one shard and one tenant\n";
    return 1;
  }

  std::cout << "fleet: " << Config.Tenants << " tenants across "
            << Config.Shards << " shards, " << Config.Rounds << " rounds x "
            << Config.TicksPerRound << " ticks under '" << Config.Policy
            << "'" << (Config.Memoize ? " (memoized)" : "") << "\n";

  exp::FleetResult R = exp::runFleetScenario(Config);

  std::cout << "  ticks: " << R.Stats.Totals.Ticks << "  decisions: "
            << R.DecisionsTotal << "  arrivals: "
            << R.Stats.Totals.ArrivalsDelivered << "  departures: "
            << R.Stats.Totals.DeparturesSent << "  alive: "
            << R.Stats.Totals.TasksAlive << "\n";
  std::cout << "  throughput: " << formatDouble(R.TicksPerSec / 1e3, 1)
            << " Kticks/s, " << formatDouble(R.DecisionsPerSec / 1e6, 2)
            << " Mdecisions/s (" << formatDouble(R.WallSeconds, 2)
            << " s wall)\n";
  const support::LatencyHistogram &H = R.TickLatency;
  std::cout << "  tick latency p50/p95/p99/p99.9: " << H.p50() << "/"
            << H.p95() << "/" << H.p99() << "/" << H.p999() << " ns (max "
            << H.max() << ")\n";
  std::cout << "  determinism: stats checksum " << R.Stats.Checksum
            << ", decision checksum " << R.DecisionChecksum
            << " (bit-identical at any --jobs)\n";

  if (A.has("per-shard")) {
    Table T;
    T.addRow({"shard", "ticks", "arrivals", "departures", "alive",
              "decisions"});
    for (size_t S = 0; S < R.Stats.Shards.size(); ++S) {
      const sim::FleetShardStats &Stats = R.Stats.Shards[S];
      T.addRow();
      T.addCell(static_cast<unsigned>(S));
      T.addCell(static_cast<unsigned>(Stats.Ticks));
      T.addCell(static_cast<unsigned>(Stats.ArrivalsDelivered));
      T.addCell(static_cast<unsigned>(Stats.DeparturesSent));
      T.addCell(static_cast<unsigned>(Stats.TasksAlive));
      T.addCell(static_cast<unsigned>(R.Decisions[S].Count));
    }
    T.print(std::cout);
  }
  return 0;
}

void usage() {
  std::cout
      << "medley — mixture-of-experts thread mapping (PLDI 2015 repro)\n\n"
         "usage:\n"
         "  medley list\n"
         "  medley speedup --target cg --policy mixture "
         "--scenario large/low [--repeats 3] [--jobs N]\n"
         "                 (--jobs 0 = auto: MEDLEY_JOBS env or all cores; "
         "results are\n"
         "                 identical at any value)\n"
         "  medley coexec  --target cg --policy mixture "
         "--workload bt,is,art\n"
         "                 [--cores 32] [--period 20] [--seed 42] "
         "[--timeline]\n"
         "                 [--trace-out FILE [--trace-format columnar|csv]]\n"
         "  medley trace-export --in FILE [--out FILE]\n"
         "                 (columnar binary trace -> CSV; stdout when "
         "--out is omitted)\n"
         "  medley experts [--num 4] [--save FILE | --load FILE]\n"
         "  medley lifecycle --target cg --workload bt,is [--cores 32]\n"
         "                 [--retrain-window 512] [--shadow-window 128]\n"
         "                 [--promote-fraction 0.55] [--canary-fraction 1.0]\n"
         "                 [--canary-window 256] [--rollback-strikes 3]\n"
         "                 [--divergence-factor 3.0] [--error-floor 0.5]\n"
         "                 [--snapshot-out FILE]\n"
         "                 (baseline run -> background refit -> shadow/"
         "canary rollout)\n"
         "  medley fleet   [--shards 16] [--tenants 10000] [--rounds 8]\n"
         "                 [--ticks 25] [--churn 0.01] [--storm-shards 0]\n"
         "                 [--policy mixture] [--memoize] "
         "[--tenant-threads 8]\n"
         "                 [--seed 62951] [--jobs N] [--per-shard]\n"
         "                 (sharded fleet scenario: deterministic aggregates"
         " at any --jobs;\n"
         "                 --per-shard prints the per-shard breakdown)\n";
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    usage();
    return 1;
  }
  std::string Command = Argv[1];
  Args A(Argc, Argv);
  if (!A.valid()) {
    usage();
    return 1;
  }
  if (Command == "list")
    return cmdList();
  if (Command == "speedup")
    return cmdSpeedup(A);
  if (Command == "coexec")
    return cmdCoexec(A);
  if (Command == "trace-export")
    return cmdTraceExport(A);
  if (Command == "experts")
    return cmdExperts(A);
  if (Command == "lifecycle")
    return cmdLifecycle(A);
  if (Command == "fleet")
    return cmdFleet(A);
  usage();
  return Command == "help" || Command == "--help" ? 0 : 1;
}
