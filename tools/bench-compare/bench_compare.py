#!/usr/bin/env python3
"""Compare a fresh bench JSON against a checked-in baseline.

Fails (exit 1) when any latency metric (a key ending in ``ns_per_tick``,
``ns_per_decision``, ``seconds`` or ``registry_acquire_ns``) regresses by
more than the threshold (default 15%), or when an allocation counter
(``allocs_per_steady_tick``, ``allocs_per_acquire``) increases at all. Throughput keys (``*_per_sec``), checksums and shape
fields are informational and never gate.

Usage:
    bench_compare.py --baseline BASELINE.json --fresh FRESH.json \
        [--threshold 0.15]

The gate is one-sided: faster-than-baseline results pass (and print a
hint to refresh the baseline when the improvement is large, so the gate
keeps teeth after a speedup lands).
"""

import argparse
import json
import sys

LATENCY_SUFFIXES = ("ns_per_tick", "ns_per_decision", "seconds",
                    "registry_acquire_ns")
COUNTER_KEYS = ("allocs_per_steady_tick", "allocs_per_acquire")


def flatten(node, prefix=""):
    """Flattens nested dicts to {dotted.path: leaf-value}."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            out.update(flatten(value, path))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)
    return out


def is_latency(path):
    return path.endswith(LATENCY_SUFFIXES)


def is_counter(path):
    return path.endswith(COUNTER_KEYS)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative regression (0.15 = +15%%)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = flatten(json.load(f))
        with open(args.fresh) as f:
            fresh = flatten(json.load(f))
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench-compare: cannot load inputs: {err}", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for path, base in sorted(baseline.items()):
        gated = is_latency(path) or is_counter(path)
        if not gated:
            continue
        if path not in fresh:
            failures.append(f"{path}: present in baseline but missing from "
                            f"fresh results")
            continue
        new = fresh[path]
        checked += 1
        if is_counter(path):
            if new > base:
                failures.append(f"{path}: {base:g} -> {new:g} "
                                f"(allocation counter may not increase)")
            else:
                print(f"  ok    {path}: {base:g} -> {new:g}")
            continue
        limit = base * (1.0 + args.threshold)
        if new > limit:
            pct = 100.0 * (new - base) / base if base else float("inf")
            failures.append(f"{path}: {base:g} -> {new:g} ns "
                            f"(+{pct:.1f}%, limit +{100 * args.threshold:.0f}%)")
        else:
            note = ""
            if base and new < base * (1.0 - args.threshold):
                note = "  (much faster — consider refreshing the baseline)"
            print(f"  ok    {path}: {base:g} -> {new:g}{note}")

    if checked == 0 and not failures:
        print("bench-compare: no gated metrics found in baseline",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\nbench-compare: {len(failures)} regression(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL  {failure}", file=sys.stderr)
        return 1
    print(f"bench-compare: {checked} metric(s) within "
          f"+{100 * args.threshold:.0f}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
