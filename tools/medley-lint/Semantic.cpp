//===-- tools/medley-lint/Semantic.cpp - Interprocedural rules -----------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "medley-lint/Semantic.h"
#include "medley-lint/Cache.h"
#include "medley-lint/Internal.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <deque>
#include <tuple>

using namespace medley::lint;

namespace {

/// L7–L9 look only at the product tree; tests/benches/apps allocate and
/// log freely.
bool inScope(const CallGraph &G, size_t Node) {
  FileKind K = G.Files[G.Nodes[Node].FileId].Kind;
  return K == FileKind::Src || K == FileKind::SrcSupport;
}

Finding makeFinding(const CallGraph &G, size_t FileId, unsigned Line,
                    unsigned Col, const char *Rule, std::string Message,
                    std::string SourceLine) {
  Finding F;
  F.File = G.Files[FileId].Path;
  F.Line = Line;
  F.Col = Col;
  F.Rule = Rule;
  F.Message = std::move(Message);
  F.SourceLine = std::move(SourceLine);
  return F;
}

//===----------------------------------------------------------------------===//
// L7: hotpath-escape
//===----------------------------------------------------------------------===//

void ruleHotpathEscape(const CallGraph &G, std::vector<Finding> &Out) {
  // Best (shortest, then lexicographically smallest) entry path per
  // allocating node. Nodes iterate in Qual order, so this is
  // deterministic at any phase-1 schedule.
  struct Best {
    size_t Depth = static_cast<size_t>(-1);
    std::string Path;
  };
  std::map<size_t, Best> BestByNode;

  for (size_t E = 0; E < G.Nodes.size(); ++E) {
    if (!inScope(G, E) || !isDecisionEntry(G.Nodes[E]))
      continue;
    // BFS from the entry with parent pointers for path reconstruction.
    std::vector<size_t> Parent(G.Nodes.size(), static_cast<size_t>(-1));
    std::vector<size_t> Depth(G.Nodes.size(), static_cast<size_t>(-1));
    std::deque<size_t> Queue;
    Depth[E] = 0;
    Queue.push_back(E);
    while (!Queue.empty()) {
      size_t N = Queue.front();
      Queue.pop_front();
      if (!G.Nodes[N].Allocs.empty()) {
        std::string Path;
        for (size_t At = N;; At = Parent[At]) {
          Path = G.Nodes[At].Qual + (Path.empty() ? "" : " -> " + Path);
          if (At == E)
            break;
        }
        Best &B = BestByNode[N];
        if (Depth[N] < B.Depth || (Depth[N] == B.Depth && Path < B.Path)) {
          B.Depth = Depth[N];
          B.Path = Path;
        }
      }
      for (size_t Succ : G.Edges[N]) {
        if (!inScope(G, Succ) || Depth[Succ] != static_cast<size_t>(-1))
          continue;
        Depth[Succ] = Depth[N] + 1;
        Parent[Succ] = N;
        Queue.push_back(Succ);
      }
    }
  }

  for (const auto &[NodeId, B] : BestByNode) {
    const CallGraph::Node &N = G.Nodes[NodeId];
    for (const auto &[A, FileId] : N.Allocs) {
      if (G.allowedAt(FileId, A.Line, RuleHotpathEscape))
        continue;
      Out.push_back(makeFinding(
          G, FileId, A.Line, A.Col, RuleHotpathEscape,
          A.What + " reachable from a decision entry point via " + B.Path +
              " — the steady-state decision path must not allocate "
              "(DESIGN.md §11)",
          A.LineText));
    }
  }
}

//===----------------------------------------------------------------------===//
// L8: lock-order
//===----------------------------------------------------------------------===//

/// Calls that park the calling thread. Condition-variable waits are
/// deliberately absent: they release the lock while blocked.
bool isBlockingCallName(const std::string &S) {
  return S == "join" || S == "sleep_for" || S == "sleep_until" ||
         S == "usleep" || S == "sleep" || S == "system" || S == "parallelFor";
}

void ruleLockOrder(const CallGraph &G, std::vector<Finding> &Out) {
  // Locks each node (transitively) acquires, for the interprocedural
  // held-across-call edges. Plain fixed point; the graph is small.
  std::vector<std::set<std::string>> Acq(G.Nodes.size());
  for (size_t I = 0; I < G.Nodes.size(); ++I)
    if (inScope(G, I))
      for (const auto &[Q, FileId] : G.Nodes[I].Acquires) {
        (void)FileId;
        Acq[I].insert(Q.Name);
      }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < G.Nodes.size(); ++I) {
      if (!inScope(G, I))
        continue;
      for (size_t Succ : G.Edges[I]) {
        if (!inScope(G, Succ))
          continue;
        for (const std::string &L : Acq[Succ])
          if (Acq[I].insert(L).second)
            Changed = true;
      }
    }
  }

  // The global acquisition-order graph: ordered edges with their first
  // witness site (deterministic: nodes in Qual order, sites in body
  // order, files sorted at link time).
  struct Site {
    size_t FileId;
    unsigned Line;
    std::string LineText;
  };
  std::map<std::pair<std::string, std::string>, Site> EdgeSites;
  std::map<std::string, std::set<std::string>> Adj;
  auto addEdge = [&](const std::string &A, const std::string &B, size_t FileId,
                     unsigned Line, const std::string &LineText) {
    if (A == B)
      return;
    Adj[A].insert(B);
    EdgeSites.emplace(std::make_pair(A, B), Site{FileId, Line, LineText});
  };

  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!inScope(G, I))
      continue;
    const CallGraph::Node &N = G.Nodes[I];
    for (const auto &[E, FileId] : N.LockEdges)
      addEdge(E.First, E.Second, FileId, E.Line, E.LineText);
    for (const auto &[CS, FileId] : N.Calls) {
      if (CS.HeldLocks.empty())
        continue;
      for (size_t Target : resolveCall(G, N, CS)) {
        if (!inScope(G, Target))
          continue;
        for (const std::string &L : Acq[Target])
          for (const std::string &H : CS.HeldLocks)
            addEdge(H, L, FileId, CS.Line, CS.LineText);
      }
    }
  }

  // Cycle reports: one finding per unordered lock pair, anchored at the
  // (A,B) edge with A < B; the message carries the full return path.
  auto pathBack = [&Adj](const std::string &From,
                         const std::string &To) -> std::vector<std::string> {
    std::map<std::string, std::string> Parent;
    std::deque<std::string> Queue{From};
    Parent[From] = From;
    while (!Queue.empty()) {
      std::string At = Queue.front();
      Queue.pop_front();
      if (At == To) {
        std::vector<std::string> Path{At};
        while (At != From) {
          At = Parent[At];
          Path.insert(Path.begin(), At);
        }
        return Path;
      }
      auto It = Adj.find(At);
      if (It == Adj.end())
        continue;
      for (const std::string &Next : It->second)
        if (!Parent.count(Next)) {
          Parent[Next] = At;
          Queue.push_back(Next);
        }
    }
    return {};
  };

  for (const auto &[Pair, S] : EdgeSites) {
    const auto &[A, B] = Pair;
    if (B < A && Adj[B].count(A))
      continue; // The (B,A) direction carries the report for this pair.
    std::vector<std::string> Back = pathBack(B, A);
    if (Back.empty())
      continue;
    if (G.allowedAt(S.FileId, S.Line, RuleLockOrder))
      continue;
    std::string Cycle = A;
    for (const std::string &Step : Back)
      Cycle += " -> " + Step;
    Out.push_back(makeFinding(
        G, S.FileId, S.Line, 1, RuleLockOrder,
        "lock-order cycle: '" + B + "' acquired while holding '" + A +
            "' here, but elsewhere the order reverses (" + Cycle +
            ") — potential deadlock; pick one global order or use "
            "std::scoped_lock",
        S.LineText));
  }

  // Locks held across blocking calls.
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!inScope(G, I))
      continue;
    for (const auto &[CS, FileId] : G.Nodes[I].Calls) {
      if (CS.HeldLocks.empty() || !isBlockingCallName(CS.Name))
        continue;
      if (G.allowedAt(FileId, CS.Line, RuleLockOrder))
        continue;
      Out.push_back(makeFinding(
          G, FileId, CS.Line, CS.Col, RuleLockOrder,
          "lock '" + CS.HeldLocks.front() + "' held across blocking call '" +
              CS.Name + "' — other threads stall for the full wait; release "
                        "the lock first",
          CS.LineText));
    }
  }
}

//===----------------------------------------------------------------------===//
// L9: determinism-taint
//===----------------------------------------------------------------------===//

void ruleDeterminismTaint(const CallGraph &G, std::vector<Finding> &Out) {
  // Per-node tainted locals plus a global "returns tainted" bit,
  // iterated to a fixed point so taint laundered through a helper two
  // functions deep still reaches the sink check.
  std::vector<std::set<std::string>> Tainted(G.Nodes.size());
  std::vector<char> RetTainted(G.Nodes.size(), 0);

  auto callReturnsTainted = [&](const std::string &Name) {
    auto [Lo, Hi] = G.ByName.equal_range(Name);
    for (auto It = Lo; It != Hi; ++It)
      if (inScope(G, It->second) && RetTainted[It->second])
        return true;
    return false;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < G.Nodes.size(); ++I) {
      if (!inScope(G, I))
        continue;
      for (const TaintFlow &F : G.Nodes[I].Flows) {
        bool Src = F.HasSource;
        for (const std::string &V : F.RhsVars)
          Src = Src || Tainted[I].count(V);
        for (const std::string &C : F.RhsCalls)
          Src = Src || callReturnsTainted(C);
        if (!Src)
          continue;
        if (F.Lhs == "<return>") {
          if (!RetTainted[I]) {
            RetTainted[I] = 1;
            Changed = true;
          }
        } else if (Tainted[I].insert(F.Lhs).second) {
          Changed = true;
        }
      }
    }
  }

  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!inScope(G, I))
      continue;
    for (const auto &[S, FileId] : G.Nodes[I].Sinks) {
      std::string Reason;
      if (S.HasSource) {
        Reason = "a direct entropy/wall-clock source in the argument";
      } else {
        for (const std::string &V : S.ArgVars)
          if (Tainted[I].count(V)) {
            Reason = "tainted variable '" + V + "'";
            break;
          }
        if (Reason.empty())
          for (const std::string &C : S.ArgCalls)
            if (callReturnsTainted(C)) {
              Reason = "call '" + C + "' whose result carries taint";
              break;
            }
      }
      if (Reason.empty())
        continue;
      if (G.allowedAt(FileId, S.Line, RuleDeterminismTaint))
        continue;
      Out.push_back(makeFinding(
          G, FileId, S.Line, S.Col, RuleDeterminismTaint,
          "entropy/wall-clock taint reaches sink '" + S.Sink + "' (" + Reason +
              ") — seeds and trace output must be deterministic; derive "
              "them from the experiment seed or annotate the sink",
          S.LineText));
    }
  }
}

} // namespace

bool medley::lint::isDecisionEntry(const CallGraph::Node &N) {
  auto EndsWith = [](const std::string &S, const char *Suffix) {
    std::string Suf = Suffix;
    return S.size() >= Suf.size() &&
           S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
  };
  if (N.Class == "MixtureOfExperts")
    return N.Name != N.Class && N.Name != "~" + N.Class; // not ctor/dtor
  if (EndsWith(N.Class, "Selector"))
    return N.Name == "select" || N.Name == "choose" || N.Name == "update" ||
           N.Name == "blendWeights";
  if (N.Name == "buildFeatures" &&
      N.Qual.find("policy::") != std::string::npos)
    return true;
  // The expert-lifecycle hot path (DESIGN.md §14): snapshot acquisition
  // runs at every decision-epoch boundary and rollout shadow scoring at
  // every decision, so both must stay allocation- and lock-free like the
  // decision loop they sit on.
  if (N.Class == "ExpertRegistry")
    return N.Name == "acquire";
  // (maintain() is deliberately NOT an entry: it is the epoch-boundary
  // slow path where staging, rebinds and the candidate mailbox mutex are
  // allowed to live.)
  if (N.Class == "RolloutController")
    return N.Name == "observe";
  if (N.Class == "LiveMixture")
    return N.Name == "select";
  // The SoA tick kernels: the per-tick column reductions and the steady
  // fast path run once per simulated tick, so any allocation reachable
  // from them multiplies by the tick count. Arena-backed staging (the
  // amortized chunk growth inside support::Arena and the sticky column
  // growth in TaskTable::adopt) carries explicit allow(hotpath-escape)
  // rationales at the allocation sites instead of an entry-list carve-out.
  if (N.Class == "TaskTable")
    return N.Name == "refresh" || N.Name == "compact";
  if (N.Name == "stepSteady" || N.Name == "cachedRegionRate")
    return true;
  return N.Class == "Simulation" &&
         (N.Name == "step" || N.Name == "recomputeTickState" ||
          N.Name == "runnableThreads");
}

std::vector<Finding> medley::lint::runSemanticRules(const CallGraph &G) {
  std::vector<Finding> Out;
  ruleHotpathEscape(G, Out);
  ruleLockOrder(G, Out);
  ruleDeterminismTaint(G, Out);
  return Out;
}

AnalyzeResult medley::lint::analyzeSources(const std::vector<SourceFile> &Files,
                                           const AnalyzeOptions &Opts) {
  AnalyzeResult R;

  LintCache Cache;
  if (!Opts.CachePath.empty())
    Cache.load(Opts.CachePath);

  struct PerFile {
    std::vector<Finding> Findings;
    FileIndex Index;
  };
  std::vector<PerFile> Results(Files.size());
  std::vector<unsigned long long> Hashes(Files.size(), 0);

  // Phase 1, dynamically scheduled over files. Every slot is written by
  // exactly one body invocation, and the merge below walks slots in
  // input order — the output cannot depend on the schedule.
  support::ThreadPool Pool(Opts.Jobs);
  Pool.parallelFor(Files.size(), [&](size_t I) {
    const SourceFile &SF = Files[I];
    Hashes[I] = fnv1aHash(SF.Source);
    CacheEntry Hit;
    if (Cache.lookup(SF.Path, Hashes[I], Hit)) {
      Results[I].Findings = std::move(Hit.TokenFindings);
      Results[I].Index = std::move(Hit.Index);
      return;
    }
    Results[I].Findings = lintSource(SF.Path, SF.Source);
    Results[I].Index = buildFileIndex(SF.Path, SF.Source);
  });

  for (PerFile &P : Results)
    R.Findings.insert(R.Findings.end(), P.Findings.begin(), P.Findings.end());

  if (Opts.Semantic) {
    std::vector<FileIndex> Indexes;
    Indexes.reserve(Results.size());
    for (const PerFile &P : Results)
      Indexes.push_back(P.Index);
    R.Graph = linkCallGraph(Indexes);
    std::vector<Finding> Semantic = runSemanticRules(R.Graph);
    R.Findings.insert(R.Findings.end(), Semantic.begin(), Semantic.end());
  }

  std::sort(R.Findings.begin(), R.Findings.end(),
            [](const Finding &A, const Finding &B) {
              return std::tie(A.File, A.Line, A.Col, A.Rule, A.Message) <
                     std::tie(B.File, B.Line, B.Col, B.Rule, B.Message);
            });

  if (!Opts.CachePath.empty()) {
    LintCache Fresh; // Full rewrite: entries for vanished files age out.
    for (size_t I = 0; I < Files.size(); ++I) {
      CacheEntry E;
      E.Hash = Hashes[I];
      E.TokenFindings = std::move(Results[I].Findings);
      E.Index = std::move(Results[I].Index);
      Fresh.put(std::move(E));
    }
    Fresh.save(Opts.CachePath);
  }

  return R;
}
