//===-- tools/medley-lint/Semantic.cpp - Interprocedural rules -----------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "medley-lint/Semantic.h"
#include "medley-lint/Cache.h"
#include "medley-lint/Internal.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <tuple>

using namespace medley::lint;

namespace {

/// L7–L9 look only at the product tree; tests/benches/apps allocate and
/// log freely.
bool inScope(const CallGraph &G, size_t Node) {
  FileKind K = G.Files[G.Nodes[Node].FileId].Kind;
  return K == FileKind::Src || K == FileKind::SrcSupport;
}

Finding makeFinding(const CallGraph &G, size_t FileId, unsigned Line,
                    unsigned Col, const char *Rule, std::string Message,
                    std::string SourceLine) {
  Finding F;
  F.File = G.Files[FileId].Path;
  F.Line = Line;
  F.Col = Col;
  F.Rule = Rule;
  F.Message = std::move(Message);
  F.SourceLine = std::move(SourceLine);
  return F;
}

//===----------------------------------------------------------------------===//
// L7: hotpath-escape
//===----------------------------------------------------------------------===//

void ruleHotpathEscape(const CallGraph &G, std::vector<Finding> &Out) {
  // Best (shortest, then lexicographically smallest) entry path per
  // allocating node. Nodes iterate in Qual order, so this is
  // deterministic at any phase-1 schedule.
  struct Best {
    size_t Depth = static_cast<size_t>(-1);
    std::string Path;
  };
  std::map<size_t, Best> BestByNode;

  for (size_t E = 0; E < G.Nodes.size(); ++E) {
    if (!inScope(G, E) || !isDecisionEntry(G.Nodes[E]))
      continue;
    // BFS from the entry with parent pointers for path reconstruction.
    std::vector<size_t> Parent(G.Nodes.size(), static_cast<size_t>(-1));
    std::vector<size_t> Depth(G.Nodes.size(), static_cast<size_t>(-1));
    std::deque<size_t> Queue;
    Depth[E] = 0;
    Queue.push_back(E);
    while (!Queue.empty()) {
      size_t N = Queue.front();
      Queue.pop_front();
      if (!G.Nodes[N].Allocs.empty()) {
        std::string Path;
        for (size_t At = N;; At = Parent[At]) {
          Path = G.Nodes[At].Qual + (Path.empty() ? "" : " -> " + Path);
          if (At == E)
            break;
        }
        Best &B = BestByNode[N];
        if (Depth[N] < B.Depth || (Depth[N] == B.Depth && Path < B.Path)) {
          B.Depth = Depth[N];
          B.Path = Path;
        }
      }
      for (size_t Succ : G.Edges[N]) {
        if (!inScope(G, Succ) || Depth[Succ] != static_cast<size_t>(-1))
          continue;
        Depth[Succ] = Depth[N] + 1;
        Parent[Succ] = N;
        Queue.push_back(Succ);
      }
    }
  }

  for (const auto &[NodeId, B] : BestByNode) {
    const CallGraph::Node &N = G.Nodes[NodeId];
    for (const auto &[A, FileId] : N.Allocs) {
      if (G.allowedAt(FileId, A.Line, RuleHotpathEscape))
        continue;
      Out.push_back(makeFinding(
          G, FileId, A.Line, A.Col, RuleHotpathEscape,
          A.What + " reachable from a decision entry point via " + B.Path +
              " — the steady-state decision path must not allocate "
              "(DESIGN.md §11)",
          A.LineText));
    }
  }
}

//===----------------------------------------------------------------------===//
// L8: lock-order
//===----------------------------------------------------------------------===//

/// Calls that park the calling thread. Condition-variable waits are
/// deliberately absent: they release the lock while blocked.
bool isBlockingCallName(const std::string &S) {
  return S == "join" || S == "sleep_for" || S == "sleep_until" ||
         S == "usleep" || S == "sleep" || S == "system" || S == "parallelFor";
}

void ruleLockOrder(const CallGraph &G, std::vector<Finding> &Out) {
  // Locks each node (transitively) acquires, for the interprocedural
  // held-across-call edges. Plain fixed point; the graph is small.
  std::vector<std::set<std::string>> Acq(G.Nodes.size());
  for (size_t I = 0; I < G.Nodes.size(); ++I)
    if (inScope(G, I))
      for (const auto &[Q, FileId] : G.Nodes[I].Acquires) {
        (void)FileId;
        Acq[I].insert(Q.Name);
      }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < G.Nodes.size(); ++I) {
      if (!inScope(G, I))
        continue;
      for (size_t Succ : G.Edges[I]) {
        if (!inScope(G, Succ))
          continue;
        for (const std::string &L : Acq[Succ])
          if (Acq[I].insert(L).second)
            Changed = true;
      }
    }
  }

  // The global acquisition-order graph: ordered edges with their first
  // witness site (deterministic: nodes in Qual order, sites in body
  // order, files sorted at link time).
  struct Site {
    size_t FileId;
    unsigned Line;
    std::string LineText;
  };
  std::map<std::pair<std::string, std::string>, Site> EdgeSites;
  std::map<std::string, std::set<std::string>> Adj;
  auto addEdge = [&](const std::string &A, const std::string &B, size_t FileId,
                     unsigned Line, const std::string &LineText) {
    if (A == B)
      return;
    Adj[A].insert(B);
    EdgeSites.emplace(std::make_pair(A, B), Site{FileId, Line, LineText});
  };

  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!inScope(G, I))
      continue;
    const CallGraph::Node &N = G.Nodes[I];
    for (const auto &[E, FileId] : N.LockEdges)
      addEdge(E.First, E.Second, FileId, E.Line, E.LineText);
    for (const auto &[CS, FileId] : N.Calls) {
      if (CS.HeldLocks.empty())
        continue;
      for (size_t Target : resolveCall(G, N, CS)) {
        if (!inScope(G, Target))
          continue;
        for (const std::string &L : Acq[Target])
          for (const std::string &H : CS.HeldLocks)
            addEdge(H, L, FileId, CS.Line, CS.LineText);
      }
    }
  }

  // Cycle reports: one finding per unordered lock pair, anchored at the
  // (A,B) edge with A < B; the message carries the full return path.
  auto pathBack = [&Adj](const std::string &From,
                         const std::string &To) -> std::vector<std::string> {
    std::map<std::string, std::string> Parent;
    std::deque<std::string> Queue{From};
    Parent[From] = From;
    while (!Queue.empty()) {
      std::string At = Queue.front();
      Queue.pop_front();
      if (At == To) {
        std::vector<std::string> Path{At};
        while (At != From) {
          At = Parent[At];
          Path.insert(Path.begin(), At);
        }
        return Path;
      }
      auto It = Adj.find(At);
      if (It == Adj.end())
        continue;
      for (const std::string &Next : It->second)
        if (!Parent.count(Next)) {
          Parent[Next] = At;
          Queue.push_back(Next);
        }
    }
    return {};
  };

  for (const auto &[Pair, S] : EdgeSites) {
    const auto &[A, B] = Pair;
    if (B < A && Adj[B].count(A))
      continue; // The (B,A) direction carries the report for this pair.
    std::vector<std::string> Back = pathBack(B, A);
    if (Back.empty())
      continue;
    if (G.allowedAt(S.FileId, S.Line, RuleLockOrder))
      continue;
    std::string Cycle = A;
    for (const std::string &Step : Back)
      Cycle += " -> " + Step;
    Out.push_back(makeFinding(
        G, S.FileId, S.Line, 1, RuleLockOrder,
        "lock-order cycle: '" + B + "' acquired while holding '" + A +
            "' here, but elsewhere the order reverses (" + Cycle +
            ") — potential deadlock; pick one global order or use "
            "std::scoped_lock",
        S.LineText));
  }

  // Locks held across blocking calls.
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!inScope(G, I))
      continue;
    for (const auto &[CS, FileId] : G.Nodes[I].Calls) {
      if (CS.HeldLocks.empty() || !isBlockingCallName(CS.Name))
        continue;
      if (G.allowedAt(FileId, CS.Line, RuleLockOrder))
        continue;
      Out.push_back(makeFinding(
          G, FileId, CS.Line, CS.Col, RuleLockOrder,
          "lock '" + CS.HeldLocks.front() + "' held across blocking call '" +
              CS.Name + "' — other threads stall for the full wait; release "
                        "the lock first",
          CS.LineText));
    }
  }
}

//===----------------------------------------------------------------------===//
// L9: determinism-taint
//===----------------------------------------------------------------------===//

void ruleDeterminismTaint(const CallGraph &G, std::vector<Finding> &Out) {
  // Per-node tainted locals plus a global "returns tainted" bit,
  // iterated to a fixed point so taint laundered through a helper two
  // functions deep still reaches the sink check.
  std::vector<std::set<std::string>> Tainted(G.Nodes.size());
  std::vector<char> RetTainted(G.Nodes.size(), 0);

  auto callReturnsTainted = [&](const std::string &Name) {
    auto [Lo, Hi] = G.ByName.equal_range(Name);
    for (auto It = Lo; It != Hi; ++It)
      if (inScope(G, It->second) && RetTainted[It->second])
        return true;
    return false;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < G.Nodes.size(); ++I) {
      if (!inScope(G, I))
        continue;
      for (const TaintFlow &F : G.Nodes[I].Flows) {
        bool Src = F.HasSource;
        for (const std::string &V : F.RhsVars)
          Src = Src || Tainted[I].count(V);
        for (const std::string &C : F.RhsCalls)
          Src = Src || callReturnsTainted(C);
        if (!Src)
          continue;
        if (F.Lhs == "<return>") {
          if (!RetTainted[I]) {
            RetTainted[I] = 1;
            Changed = true;
          }
        } else if (Tainted[I].insert(F.Lhs).second) {
          Changed = true;
        }
      }
    }
  }

  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!inScope(G, I))
      continue;
    for (const auto &[S, FileId] : G.Nodes[I].Sinks) {
      std::string Reason;
      if (S.HasSource) {
        Reason = "a direct entropy/wall-clock source in the argument";
      } else {
        for (const std::string &V : S.ArgVars)
          if (Tainted[I].count(V)) {
            Reason = "tainted variable '" + V + "'";
            break;
          }
        if (Reason.empty())
          for (const std::string &C : S.ArgCalls)
            if (callReturnsTainted(C)) {
              Reason = "call '" + C + "' whose result carries taint";
              break;
            }
      }
      if (Reason.empty())
        continue;
      if (G.allowedAt(FileId, S.Line, RuleDeterminismTaint))
        continue;
      Out.push_back(makeFinding(
          G, FileId, S.Line, S.Col, RuleDeterminismTaint,
          "entropy/wall-clock taint reaches sink '" + S.Sink + "' (" + Reason +
              ") — seeds and trace output must be deterministic; derive "
              "them from the experiment seed or annotate the sink",
          S.LineText));
    }
  }
}

//===----------------------------------------------------------------------===//
// L10–L12 shared: destination resolution
//===----------------------------------------------------------------------===//

/// What a summary write/store destination resolves to. The CFG builder
/// only proves "not a local"; whether the name is actually a declared
/// field or namespace-scope global — and whether it is atomic or
/// mutex-typed — is a whole-project question answered here.
struct DestInfo {
  bool Resolved = false;
  bool Guarded = false; ///< Every candidate declaration is atomic/mutex.
};

DestInfo resolveDest(const CallGraph &G, const CallGraph::Node &N,
                     const std::string &Base, const std::string &Last) {
  DestInfo D;
  if (Base.empty() || Base == "this") {
    // Bare name / explicit this: a field of the writer's own class,
    // else a global. Unresolved names (locals the builder could not
    // prove, macros) are skipped rather than guessed at.
    auto It = G.Fields.end();
    if (!N.Class.empty())
      It = G.Fields.find({N.Class, Last});
    if (It == G.Fields.end() && Base.empty())
      It = G.Fields.find({std::string(), Last});
    if (It == G.Fields.end())
      return D;
    D.Resolved = true;
    D.Guarded = It->second.Atomic || It->second.Mutex;
    return D;
  }
  // A chain `A.B...`: the base must itself be a field/global; the final
  // member is then looked up by name across every indexed class (the
  // base's type is unknown at token level). All-guarded candidates
  // count as guarded.
  auto BaseIt = G.Fields.end();
  if (!N.Class.empty())
    BaseIt = G.Fields.find({N.Class, Base});
  if (BaseIt == G.Fields.end())
    BaseIt = G.Fields.find({std::string(), Base});
  if (BaseIt == G.Fields.end())
    return D;
  bool Any = false;
  bool AllGuarded = true;
  for (const auto &[Key, FD] : G.Fields)
    if (Key.second == Last) {
      Any = true;
      AllGuarded = AllGuarded && (FD.Atomic || FD.Mutex);
    }
  if (!Any)
    return D;
  D.Resolved = true;
  D.Guarded = AllGuarded;
  return D;
}

//===----------------------------------------------------------------------===//
// L10: cross-thread-write
//===----------------------------------------------------------------------===//

/// Named methods that execute on worker threads even though their spawn
/// site is out of analytical reach: the fleet engine's run() drives each
/// of these from the lambda it hands to ThreadPool::parallelFor, one
/// shard range per worker (DESIGN.md §16), so writes reachable from them
/// race exactly as if they sat in the lambda body itself. Anchoring on
/// the names keeps coverage when the call is made through a pointer or
/// wrapper the resolver cannot follow.
bool isShardTaskRoot(const CallGraph::Node &N) {
  return N.Class == "FleetEngine" &&
         (N.Name == "stepShard" || N.Name == "drainInbox" ||
          N.Name == "runChurn");
}

void ruleCrossThreadWrite(const CallGraph &G, std::vector<Finding> &Out) {
  // Best (shortest, then lexicographically smallest) path from a
  // thread-task body to each node with unguarded writes. The walk only
  // follows calls made with no lock held and on a non-local receiver: a
  // call into an object the task constructed itself cannot race.
  struct Best {
    size_t Depth = static_cast<size_t>(-1);
    std::string Path;
  };
  std::map<size_t, Best> BestByNode;

  for (size_t E = 0; E < G.Nodes.size(); ++E) {
    if (!inScope(G, E) ||
        !(G.Nodes[E].IsThreadBody || isShardTaskRoot(G.Nodes[E])))
      continue;
    std::vector<size_t> Parent(G.Nodes.size(), static_cast<size_t>(-1));
    std::vector<size_t> Depth(G.Nodes.size(), static_cast<size_t>(-1));
    std::deque<size_t> Queue;
    Depth[E] = 0;
    Queue.push_back(E);
    while (!Queue.empty()) {
      size_t N = Queue.front();
      Queue.pop_front();
      if (!G.Nodes[N].Writes.empty()) {
        std::string Path;
        for (size_t At = N;; At = Parent[At]) {
          Path = G.Nodes[At].Qual + (Path.empty() ? "" : " -> " + Path);
          if (At == E)
            break;
        }
        Best &B = BestByNode[N];
        if (Depth[N] < B.Depth || (Depth[N] == B.Depth && Path < B.Path)) {
          B.Depth = Depth[N];
          B.Path = Path;
        }
      }
      auto Visit = [&](size_t Succ) {
        if (!inScope(G, Succ) || Depth[Succ] != static_cast<size_t>(-1))
          return;
        Depth[Succ] = Depth[N] + 1;
        Parent[Succ] = N;
        Queue.push_back(Succ);
      };
      for (const FlowCall &FC : G.Nodes[N].FlowCalls) {
        if (!FC.LockFree || FC.LocalRecv)
          continue;
        CallSite CS;
        CS.Name = FC.Name;
        CS.Qualifier = FC.Qualifier;
        CS.IsMember = FC.IsMember;
        for (size_t Succ : resolveCall(G, G.Nodes[N], CS))
          Visit(Succ);
      }
      // A task that spawns further tasks keeps everything on-thread.
      for (const std::string &Body : G.Nodes[N].SpawnedBodies) {
        auto It = G.ByQual.find(Body);
        if (It != G.ByQual.end())
          Visit(It->second);
      }
    }
  }

  for (const auto &[NodeId, B] : BestByNode) {
    const CallGraph::Node &N = G.Nodes[NodeId];
    for (const auto &[W, FileId] : N.Writes) {
      DestInfo D = resolveDest(G, N, W.Base, W.Last);
      if (!D.Resolved || D.Guarded)
        continue;
      if (G.allowedAt(FileId, W.Line, RuleCrossThreadWrite))
        continue;
      Out.push_back(makeFinding(
          G, FileId, W.Line, W.Col, RuleCrossThreadWrite,
          "write to '" + W.Lhs + "' with no lock held on a path reachable "
              "from a thread-task body (" + B.Path + ") — the destination "
              "is a non-atomic field/global, so concurrent tasks race; "
              "guard the write or make it std::atomic (DESIGN.md §15)",
          W.LineText));
    }
  }
}

//===----------------------------------------------------------------------===//
// L11: snapshot-retention
//===----------------------------------------------------------------------===//

void ruleSnapshotRetention(const CallGraph &G, std::vector<Finding> &Out) {
  // Only meaningful in trees that define the registry: the "acquire"
  // origin the summaries track is ExpertRegistry::acquire's epoch
  // snapshot (DESIGN.md §14).
  bool Active = false;
  for (const CallGraph::Node &N : G.Nodes)
    if (N.Class == "ExpertRegistry" && N.Name == "acquire") {
      Active = true;
      break;
    }
  if (!Active)
    return;

  // Transitive "may park the thread or run the reclaimer": holding a
  // snapshot across such a call stretches the epoch and delays
  // reclamation of every retired generation.
  std::vector<char> MayBlock(G.Nodes.size(), 0);
  for (size_t I = 0; I < G.Nodes.size(); ++I)
    if (inScope(G, I))
      for (const FlowCall &FC : G.Nodes[I].FlowCalls)
        if (isBlockingCallName(FC.Name) || FC.Name == "maintain")
          MayBlock[I] = 1;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < G.Nodes.size(); ++I) {
      if (!inScope(G, I) || MayBlock[I])
        continue;
      for (size_t Succ : G.Edges[I])
        if (inScope(G, Succ) && MayBlock[Succ]) {
          MayBlock[I] = 1;
          Changed = true;
          break;
        }
    }
  }

  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!inScope(G, I))
      continue;
    const CallGraph::Node &N = G.Nodes[I];
    for (const auto &[R, FileId] : N.Retentions) {
      if (R.Origin != "acquire")
        continue;
      if (G.allowedAt(FileId, R.Line, RuleSnapshotRetention))
        continue;
      switch (R.K) {
      case RetentionSite::StoreTo: {
        if (!resolveDest(G, N, R.Base, R.Last).Resolved)
          break;
        Out.push_back(makeFinding(
            G, FileId, R.Line, R.Col, RuleSnapshotRetention,
            "snapshot-derived pointer '" + R.Var + "' stored into a "
                "field/global — ExpertSnapshot contents are only valid "
                "while the epoch pin is held; re-acquire per epoch "
                "instead of caching (DESIGN.md §14)",
            R.LineText));
        break;
      }
      case RetentionSite::ReturnFrom:
        Out.push_back(makeFinding(
            G, FileId, R.Line, R.Col, RuleSnapshotRetention,
            "snapshot-derived value" +
                (R.Var == "<result>" ? std::string()
                                     : " '" + R.Var + "'") +
                " returned from the acquiring function — the caller "
                "outlives the epoch pin; pass the snapshot handle "
                "itself instead (DESIGN.md §14)",
            R.LineText));
        break;
      case RetentionSite::AcrossCall: {
        bool Bad =
            isBlockingCallName(R.Callee) || R.Callee == "maintain";
        if (!Bad) {
          CallSite CS;
          CS.Name = R.Callee;
          CS.Qualifier = R.CalleeQual;
          CS.IsMember = R.CalleeMember;
          for (size_t T : resolveCall(G, N, CS))
            if (inScope(G, T) && MayBlock[T]) {
              Bad = true;
              break;
            }
        }
        if (!Bad)
          break;
        Out.push_back(makeFinding(
            G, FileId, R.Line, R.Col, RuleSnapshotRetention,
            "snapshot '" + R.Var + "' held across '" + R.Callee +
                "', which may block or run the registry reclaimer — "
                "the pin stalls snapshot retirement for the full wait; "
                "drop the snapshot first (DESIGN.md §14)",
            R.LineText));
        break;
      }
      default:
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// L12: arena-escape
//===----------------------------------------------------------------------===//

void ruleArenaEscape(const CallGraph &G, std::vector<Finding> &Out) {
  // Arena ids each node (transitively) resets, so "held across a call
  // that resets the matching arena" sees resets buried in callees.
  std::vector<std::set<std::string>> Resets(G.Nodes.size());
  for (size_t I = 0; I < G.Nodes.size(); ++I)
    if (inScope(G, I))
      Resets[I].insert(G.Nodes[I].ResetArenas.begin(),
                       G.Nodes[I].ResetArenas.end());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < G.Nodes.size(); ++I) {
      if (!inScope(G, I))
        continue;
      for (size_t Succ : G.Edges[I]) {
        if (!inScope(G, Succ))
          continue;
        for (const std::string &A : Resets[Succ])
          if (Resets[I].insert(A).second)
            Changed = true;
      }
    }
  }

  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!inScope(G, I))
      continue;
    const CallGraph::Node &N = G.Nodes[I];
    for (const auto &[R, FileId] : N.Retentions) {
      if (R.Origin.rfind("arena:", 0) != 0)
        continue;
      std::string ArenaId = R.Origin.substr(6);
      if (G.allowedAt(FileId, R.Line, RuleArenaEscape))
        continue;
      switch (R.K) {
      case RetentionSite::StoreTo: {
        if (!resolveDest(G, N, R.Base, R.Last).Resolved)
          break;
        Out.push_back(makeFinding(
            G, FileId, R.Line, R.Col, RuleArenaEscape,
            "arena-backed pointer '" + R.Var + "' (from '" + ArenaId +
                "') stored into a field/global — the storage is bulk-"
                "freed at the arena's next reset(), leaving a dangling "
                "pointer; copy the data out or allocate it off-arena "
                "(DESIGN.md §15)",
            R.LineText));
        break;
      }
      case RetentionSite::ReturnFrom:
        Out.push_back(makeFinding(
            G, FileId, R.Line, R.Col, RuleArenaEscape,
            "arena-backed value" +
                (R.Var == "<result>" ? std::string()
                                     : " '" + R.Var + "'") +
                " (from '" + ArenaId + "') returned to the caller — "
                "arena storage is tick-scoped and dies at reset(); "
                "return an owned copy instead (DESIGN.md §15)",
            R.LineText));
        break;
      case RetentionSite::UseAfterReset:
        Out.push_back(makeFinding(
            G, FileId, R.Line, R.Col, RuleArenaEscape,
            "arena-backed pointer '" + R.Var + "' used after '" +
                ArenaId + "' was reset() on at least one path — the "
                "storage has been bulk-freed; reorder the reset or "
                "re-derive the pointer (DESIGN.md §15)",
            R.LineText));
        break;
      case RetentionSite::AcrossCall: {
        CallSite CS;
        CS.Name = R.Callee;
        CS.Qualifier = R.CalleeQual;
        CS.IsMember = R.CalleeMember;
        bool ResetsIt = false;
        for (size_t T : resolveCall(G, N, CS))
          if (inScope(G, T) && Resets[T].count(ArenaId)) {
            ResetsIt = true;
            break;
          }
        if (!ResetsIt)
          break;
        Out.push_back(makeFinding(
            G, FileId, R.Line, R.Col, RuleArenaEscape,
            "arena-backed pointer '" + R.Var + "' still live across '" +
                R.Callee + "', which resets '" + ArenaId +
                "' — every later use reads bulk-freed storage; finish "
                "with the pointer before the reset (DESIGN.md §15)",
            R.LineText));
        break;
      }
      default:
        break;
      }
    }
  }
}

} // namespace

bool medley::lint::isDecisionEntry(const CallGraph::Node &N) {
  auto EndsWith = [](const std::string &S, const char *Suffix) {
    std::string Suf = Suffix;
    return S.size() >= Suf.size() &&
           S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
  };
  if (N.Class == "MixtureOfExperts")
    return N.Name != N.Class && N.Name != "~" + N.Class; // not ctor/dtor
  if (EndsWith(N.Class, "Selector"))
    return N.Name == "select" || N.Name == "choose" || N.Name == "update" ||
           N.Name == "blendWeights";
  if (N.Name == "buildFeatures" &&
      N.Qual.find("policy::") != std::string::npos)
    return true;
  // The expert-lifecycle hot path (DESIGN.md §14): snapshot acquisition
  // runs at every decision-epoch boundary and rollout shadow scoring at
  // every decision, so both must stay allocation- and lock-free like the
  // decision loop they sit on.
  if (N.Class == "ExpertRegistry")
    return N.Name == "acquire";
  // (maintain() is deliberately NOT an entry: it is the epoch-boundary
  // slow path where staging, rebinds and the candidate mailbox mutex are
  // allowed to live.)
  if (N.Class == "RolloutController")
    return N.Name == "observe";
  if (N.Class == "LiveMixture")
    return N.Name == "select";
  // The SoA tick kernels: the per-tick column reductions and the steady
  // fast path run once per simulated tick, so any allocation reachable
  // from them multiplies by the tick count. Arena-backed staging (the
  // amortized chunk growth inside support::Arena and the sticky column
  // growth in TaskTable::adopt) carries explicit allow(hotpath-escape)
  // rationales at the allocation sites instead of an entry-list carve-out.
  if (N.Class == "TaskTable")
    return N.Name == "refresh" || N.Name == "compact";
  if (N.Name == "stepSteady" || N.Name == "cachedRegionRate")
    return true;
  // The fleet engine's steady tick loop (DESIGN.md §16): stepShard runs
  // once per shard per tick over 10^5+ tenants, so it inherits the
  // zero-allocation contract of Simulation::step, which it wraps. The
  // round-boundary paths (drainInbox, runChurn) materialize tenants and
  // are deliberately NOT entries. The fixed-bucket latency recorder sits
  // inside the timed window of every tick, so it is held to the same bar.
  if (N.Class == "FleetEngine")
    return N.Name == "stepShard";
  if (N.Class == "LatencyHistogram")
    return N.Name == "record" || N.Name == "merge";
  return N.Class == "Simulation" &&
         (N.Name == "step" || N.Name == "recomputeTickState" ||
          N.Name == "runnableThreads");
}

std::vector<Finding> medley::lint::runSemanticRules(const CallGraph &G) {
  std::vector<Finding> Out;
  ruleHotpathEscape(G, Out);
  ruleLockOrder(G, Out);
  ruleDeterminismTaint(G, Out);
  ruleCrossThreadWrite(G, Out);
  ruleSnapshotRetention(G, Out);
  ruleArenaEscape(G, Out);
  return Out;
}

AnalyzeResult medley::lint::analyzeSources(const std::vector<SourceFile> &Files,
                                           const AnalyzeOptions &Opts) {
  AnalyzeResult R;

  LintCache Cache;
  Cache.setFingerprint(cacheFingerprint(Opts.FingerprintSalt));
  if (!Opts.CachePath.empty())
    Cache.load(Opts.CachePath);

  struct PerFile {
    std::vector<Finding> Findings;
    FileIndex Index;
  };
  std::vector<PerFile> Results(Files.size());
  std::vector<unsigned long long> Hashes(Files.size(), 0);
  std::atomic<size_t> Hits{0};

  // Phase 1, dynamically scheduled over files. Every slot is written by
  // exactly one body invocation, and the merge below walks slots in
  // input order — the output cannot depend on the schedule.
  support::ThreadPool Pool(Opts.Jobs);
  Pool.parallelFor(Files.size(), [&](size_t I) {
    const SourceFile &SF = Files[I];
    Hashes[I] = fnv1aHash(SF.Source);
    CacheEntry Hit;
    if (Cache.lookup(SF.Path, Hashes[I], Hit)) {
      Results[I].Findings = std::move(Hit.TokenFindings);
      Results[I].Index = std::move(Hit.Index);
      Hits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Results[I].Findings = lintSource(SF.Path, SF.Source);
    Results[I].Index = buildFileIndex(SF.Path, SF.Source);
  });
  R.CacheHits = Hits.load();

  for (PerFile &P : Results)
    R.Findings.insert(R.Findings.end(), P.Findings.begin(), P.Findings.end());

  if (Opts.Semantic) {
    std::vector<FileIndex> Indexes;
    Indexes.reserve(Results.size());
    for (const PerFile &P : Results)
      Indexes.push_back(P.Index);
    R.Graph = linkCallGraph(Indexes);
    std::vector<Finding> Semantic = runSemanticRules(R.Graph);
    R.Findings.insert(R.Findings.end(), Semantic.begin(), Semantic.end());
  }

  std::sort(R.Findings.begin(), R.Findings.end(),
            [](const Finding &A, const Finding &B) {
              return std::tie(A.File, A.Line, A.Col, A.Rule, A.Message) <
                     std::tie(B.File, B.Line, B.Col, B.Rule, B.Message);
            });

  if (!Opts.CachePath.empty()) {
    LintCache Fresh; // Full rewrite: entries for vanished files age out.
    Fresh.setFingerprint(cacheFingerprint(Opts.FingerprintSalt));
    for (size_t I = 0; I < Files.size(); ++I) {
      CacheEntry E;
      E.Hash = Hashes[I];
      E.TokenFindings = std::move(Results[I].Findings);
      E.Index = std::move(Results[I].Index);
      Fresh.put(std::move(E));
    }
    Fresh.save(Opts.CachePath);
  }

  return R;
}
