//===-- tools/medley-lint/Cfg.h - Per-function control-flow graph -*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-function control-flow graph over the token stream (DESIGN.md
/// §15): statement-level basic blocks connected by branch/loop/early-
/// return edges, each block holding the dataflow-relevant *events* of
/// its statements (lock acquire/release, local defs and uses, writes
/// through non-local lvalues, calls, arena resets, returns). The CFG is
/// the substrate the worklist framework in Dataflow.h solves over; the
/// fixpoint results become the per-function summaries (UnguardedWrite,
/// RetentionSite, FlowCall) that the interprocedural rules L10–L12
/// consume at link time.
///
/// Like the indexer, the builder is a heuristic reader, not a front
/// end: `if`/`else`, `for`/`while`/`do` (with back edges), `switch`
/// (with fallthrough), `break`/`continue`/`return` are modeled; what it
/// cannot parse degrades to a straight-line block and never crashes.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_CFG_H
#define MEDLEY_TOOLS_LINT_CFG_H

#include "medley-lint/Lint.h"

#include <utility>

namespace medley::lint {

/// One dataflow-relevant event inside a basic block.
struct CfgStmt {
  enum Kind {
    Acquire,    ///< Lock acquired; Id = normalized lock id.
    Release,    ///< Lock released (scope end or .unlock()).
    Def,        ///< Local defined/rebound; Id = var, Origin/Aliases = rhs.
    Use,        ///< Local mentioned as a chain base; Id = var.
    Write,      ///< Non-local lvalue written; Id = chain, Base/Last split.
    Call,       ///< Call site; Id = callee name.
    ArenaReset, ///< `X.reset()`; Id = normalized receiver id.
    Ret,        ///< Return statement; Origin/Aliases = returned value.
  };
  Kind K = Use;
  std::string Id;
  std::string Base;   ///< Write: chain base ("this", ident, or "").
  std::string Last;   ///< Write: last chain component.
  std::string Origin; ///< Def/Ret: direct origin ("acquire"/"arena:<id>").
  std::string Qual;   ///< Call: explicit qualifier as written.
  /// Def: rhs vars whose tracked origin the defined var inherits.
  /// Write/Ret: rhs vars stored/returned in pointer-preserving form.
  std::vector<std::string> Aliases;
  bool Member = false;    ///< Call: `x.f(...)` / `x->f(...)`.
  bool LocalRecv = false; ///< Call: receiver chain base is a local.
  unsigned Line = 0;
  unsigned Col = 0;
  std::string LineText; ///< Trimmed source line (finding anchors only).
};

struct CfgBlock {
  std::vector<CfgStmt> Stmts;
  std::vector<unsigned> Succs;
  std::vector<unsigned> Preds;
};

/// Block 0 is the entry, block 1 the exit; every return edge lands on
/// the exit block. Blocks unreachable from the entry (dead code after a
/// return) simply keep the solver's initial fact.
struct FunctionCfg {
  std::vector<CfgBlock> Blocks;
  unsigned Entry = 0;
  unsigned Exit = 1;
};

/// Context the builder needs from the indexer.
struct CfgBuildContext {
  const std::vector<Token> *Toks = nullptr;
  const std::vector<std::string> *Lines = nullptr;
  std::string ClassName; ///< Enclosing class ("" for free functions).
  /// Pre-seeded locals: parameter names, and for task lambdas the
  /// by-value capture names (a copy is task-local state).
  std::vector<std::string> SeedLocals;
  /// Token ranges to skip entirely — extracted task-lambda bodies,
  /// which get their own CFG under their own FunctionInfo.
  std::vector<std::pair<size_t, size_t>> SkipRanges;
};

/// Builds the CFG for one function body token range [BodyBegin,
/// BodyEnd). Never fails; unparseable regions contribute straight-line
/// blocks.
FunctionCfg buildFunctionCfg(size_t BodyBegin, size_t BodyEnd,
                             const CfgBuildContext &Ctx);

/// Declared parameter names from a `(...)` parameter token range
/// [B, E) (exclusive of the parens). Heuristic: the trailing
/// identifier of each top-level comma-separated declarator.
std::vector<std::string> collectParamNames(const std::vector<Token> &Toks,
                                           size_t B, size_t E);

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_CFG_H
