//===-- tools/medley-lint/Cache.cpp - Incremental result cache -----------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "medley-lint/Cache.h"
#include "medley-lint/Internal.h"

#include <fstream>
#include <sstream>

using namespace medley::lint;

namespace {

/// Bump on any format change: a mismatch simply makes the next run
/// cold. Rule-semantics changes are covered by the fingerprint field
/// next to it (cacheFingerprint), so forgetting a manual bump cannot
/// serve stale reports.
const char *const CacheHeader = "medley-lint-cache 3";

bool parseU64(const std::string &S, unsigned long long &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    unsigned long long Next = Out * 10 + static_cast<unsigned long long>(C - '0');
    if (Next < Out)
      return false;
    Out = Next;
  }
  return true;
}

} // namespace

unsigned long long medley::lint::fnv1aHash(const std::string &Data) {
  unsigned long long H = 1469598103934665603ULL;
  for (char C : Data) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

unsigned long long medley::lint::cacheFingerprint(const std::string &Salt) {
  std::string Ident = AnalyzerVersion;
  for (const RuleMeta &M : ruleCatalog()) {
    Ident += '\n';
    Ident += M.Id;
    Ident += '\t';
    Ident += M.Name;
    Ident += '\t';
    Ident += M.Short;
  }
  Ident += '\n';
  Ident += Salt;
  return fnv1aHash(Ident);
}

void LintCache::load(const std::string &Path) {
  Entries.clear();
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Data = Buf.str();

  size_t Pos = 0;
  std::vector<std::string> F;
  if (!readTsvLine(Data, Pos, F) || F.size() != 2 || F[0] != CacheHeader ||
      F[1] != std::to_string(Fingerprint))
    return;
  while (Pos < Data.size()) {
    if (!readTsvLine(Data, Pos, F) || F.size() != 4 || F[0] != "F") {
      Entries.clear();
      return;
    }
    std::string FilePath = F[1];
    CacheEntry E;
    unsigned NumFindings = 0;
    if (!parseU64(F[2], E.Hash) || !parseUnsignedField(F[3], NumFindings)) {
      Entries.clear();
      return;
    }
    for (unsigned I = 0; I < NumFindings; ++I) {
      Finding G;
      if (!readTsvLine(Data, Pos, F) || F.size() != 7 || F[0] != "g" ||
          !parseUnsignedField(F[2], G.Line) ||
          !parseUnsignedField(F[3], G.Col)) {
        Entries.clear();
        return;
      }
      G.File = F[1];
      G.Rule = F[4];
      G.Message = F[5];
      G.SourceLine = F[6];
      E.TokenFindings.push_back(std::move(G));
    }
    if (!deserializeFileIndex(Data, Pos, E.Index) ||
        E.Index.Path != FilePath) {
      Entries.clear();
      return;
    }
    Entries[FilePath] = std::move(E);
  }
}

bool LintCache::lookup(const std::string &File, unsigned long long Hash,
                       CacheEntry &Out) const {
  auto It = Entries.find(File);
  if (It == Entries.end() || It->second.Hash != Hash)
    return false;
  Out = It->second;
  return true;
}

void LintCache::put(CacheEntry E) {
  std::string Key = E.Index.Path;
  Entries[Key] = std::move(E);
}

bool LintCache::save(const std::string &Path) const {
  std::string Out;
  appendTsvLine(Out, {CacheHeader, std::to_string(Fingerprint)});
  for (const auto &[FilePath, E] : Entries) {
    appendTsvLine(Out, {"F", FilePath, std::to_string(E.Hash),
                        std::to_string(E.TokenFindings.size())});
    for (const Finding &G : E.TokenFindings)
      appendTsvLine(Out, {"g", G.File, std::to_string(G.Line),
                          std::to_string(G.Col), G.Rule, G.Message,
                          G.SourceLine});
    Out += serializeFileIndex(E.Index);
  }
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS)
    return false;
  OS << Out;
  return static_cast<bool>(OS);
}
