//===-- tools/medley-lint/Dataflow.h - Worklist dataflow solver -*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small worklist dataflow framework over FunctionCfg (DESIGN.md
/// §15). A Domain supplies the lattice: a Value type, the boundary fact
/// (function entry for forward problems, exit for backward), the
/// initial fact for all other blocks (the meet identity), a meet, and a
/// per-event transfer. solveForward/solveBackward iterate to a fixpoint
/// with a deterministic sweep order, so results are identical at any
/// `--jobs`.
///
/// Three concrete domains live in Dataflow.cpp and feed the L10–L12
/// summaries:
///  - must-held locks   (forward,  meet = intersection)
///  - tracked pointers  (forward,  meet = union of origin maps)
///  - liveness          (backward, meet = union)
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_DATAFLOW_H
#define MEDLEY_TOOLS_LINT_DATAFLOW_H

#include "medley-lint/Cfg.h"
#include "medley-lint/Index.h"

namespace medley::lint {

/// Fixpoint cap: CFGs are per-function and small; any lattice here has
/// finite height, but a sweep cap keeps a builder bug from hanging.
inline constexpr int MaxDataflowSweeps = 100;

/// Forward problem: returns the fact at each block *entry*.
/// Domain requirements:
///   using Value;
///   Value boundary() const;                       // entry fact
///   Value init() const;                           // meet identity
///   bool meetInto(Value &Into, const Value &From) const;
///   void transfer(const CfgStmt &S, Value &V) const;
template <typename Domain>
std::vector<typename Domain::Value> solveForward(const FunctionCfg &G,
                                                 const Domain &D) {
  std::vector<typename Domain::Value> In(G.Blocks.size(), D.init());
  if (G.Blocks.empty())
    return In;
  In[G.Entry] = D.boundary();
  for (int Sweep = 0; Sweep < MaxDataflowSweeps; ++Sweep) {
    bool Changed = false;
    for (unsigned B = 0; B < G.Blocks.size(); ++B) {
      typename Domain::Value Out = In[B];
      for (const CfgStmt &S : G.Blocks[B].Stmts)
        D.transfer(S, Out);
      for (unsigned Succ : G.Blocks[B].Succs)
        Changed |= D.meetInto(In[Succ], Out);
    }
    if (!Changed)
      break;
  }
  return In;
}

/// Backward problem: returns the fact at each block *exit* (e.g. the
/// live-out set). The transfer is applied to statements in reverse.
template <typename Domain>
std::vector<typename Domain::Value> solveBackward(const FunctionCfg &G,
                                                  const Domain &D) {
  std::vector<typename Domain::Value> Out(G.Blocks.size(), D.init());
  if (G.Blocks.empty())
    return Out;
  Out[G.Exit] = D.boundary();
  for (int Sweep = 0; Sweep < MaxDataflowSweeps; ++Sweep) {
    bool Changed = false;
    for (unsigned B = G.Blocks.size(); B-- > 0;) {
      typename Domain::Value In = Out[B];
      const std::vector<CfgStmt> &Stmts = G.Blocks[B].Stmts;
      for (size_t S = Stmts.size(); S-- > 0;)
        D.transfer(Stmts[S], In);
      for (unsigned Pred : G.Blocks[B].Preds)
        Changed |= D.meetInto(Out[Pred], In);
    }
    if (!Changed)
      break;
  }
  return Out;
}

/// Runs the three analyses over \p Cfg and fills \p Fn's flow
/// summaries: UnguardedWrites (must-held empty at a field/global
/// write), RetentionSites (tracked acquire/arena pointers stored,
/// returned, used after reset, or live across calls), FlowCalls
/// (per-call must-lock + receiver locality for the thread-reachability
/// walk), and ResetArenas. Deterministic: summaries are sorted.
void computeFlowSummaries(const FunctionCfg &Cfg, FunctionInfo &Fn);

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_DATAFLOW_H
