//===-- tools/medley-lint/Internal.h - Shared internals ---------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internals shared between the lint driver and the rule
/// implementations; not part of the tool's public surface.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_INTERNAL_H
#define MEDLEY_TOOLS_LINT_INTERNAL_H

#include "medley-lint/Lint.h"

namespace medley::lint {

/// Canonical rule names, in reporting order.
inline constexpr const char *RuleNondeterminism = "nondeterminism";
inline constexpr const char *RuleUnorderedReduction = "unordered-reduction";
inline constexpr const char *RuleRawConcurrency = "raw-concurrency";
inline constexpr const char *RuleFloatEquality = "float-equality";
inline constexpr const char *RuleErrorCheck = "error-check";
inline constexpr const char *RuleHotpathAlloc = "hotpath-alloc";
// Interprocedural families (DESIGN.md §12), computed over the linked
// call graph rather than a single token stream.
inline constexpr const char *RuleHotpathEscape = "hotpath-escape";
inline constexpr const char *RuleLockOrder = "lock-order";
inline constexpr const char *RuleDeterminismTaint = "determinism-taint";
// Flow-sensitive families (DESIGN.md §15), computed from the CFG +
// dataflow summaries over the linked call graph.
inline constexpr const char *RuleCrossThreadWrite = "cross-thread-write";
inline constexpr const char *RuleSnapshotRetention = "snapshot-retention";
inline constexpr const char *RuleArenaEscape = "arena-escape";

/// Analyzer identity folded into the incremental-cache fingerprint: any
/// change to what the analyzer computes (new rules, changed summaries,
/// changed serialization) must bump this so warm caches cannot serve
/// stale reports.
inline constexpr const char *AnalyzerVersion = "medley-lint-4";

/// One catalog row per rule: id, human name, one-line description.
/// Drives the SARIF `rules` metadata and the cache fingerprint.
struct RuleMeta {
  const char *Id;
  const char *Name;
  const char *Short;
};

/// All rules L1–L12 in reporting order.
const std::vector<RuleMeta> &ruleCatalog();

/// Runs every rule family applicable to \p Kind over \p Lexed, appending
/// raw (un-suppressed, unsorted) findings to \p Out. \p SourceLines is
/// the file split at newlines, 0-indexed, used to fill
/// Finding::SourceLine.
void runRules(const std::string &Path, FileKind Kind, const LexedFile &Lexed,
              const std::vector<std::string> &SourceLines,
              std::vector<Finding> &Out);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string &S);

/// \p I indexes an opening brace/paren; returns the index one past its
/// match (or Toks.size() when unbalanced).
size_t skipBalanced(const std::vector<Token> &Toks, size_t I,
                    const char *Open, const char *Close);

/// Skips template arguments starting at an opening '<' at \p I; '>>'
/// closes two levels. Returns the index one past the closing '>', or
/// the bail-out position when the '<' turns out to be a comparison.
size_t skipTemplateArgs(const std::vector<Token> &Toks, size_t I);

/// Expands allow annotations to per-line rule coverage: an annotation on
/// line N covers N and N+1, and when the statement starting there spans
/// further physical lines, every line through the statement's end (';',
/// or a block open/close at top level). This is what makes
///   // medley-lint: allow(rule)
///   auto X = call(spanning,
///                 several, lines);
/// suppress findings anywhere inside the statement.
std::map<unsigned, std::set<std::string>>
expandAllowCoverage(const LexedFile &Lexed);

/// Serialization plumbing shared by the index and the cache: records
/// are lines of tab-separated fields with backslash escapes for tab,
/// newline and backslash.
std::string escapeTsvField(const std::string &S);
void appendTsvLine(std::string &Out, const std::vector<std::string> &Fields);
bool readTsvLine(const std::string &Data, size_t &Pos,
                 std::vector<std::string> &Fields);
bool parseUnsignedField(const std::string &S, unsigned &Out);

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_INTERNAL_H
