//===-- tools/medley-lint/Internal.h - Shared internals ---------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internals shared between the lint driver and the rule
/// implementations; not part of the tool's public surface.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_INTERNAL_H
#define MEDLEY_TOOLS_LINT_INTERNAL_H

#include "medley-lint/Lint.h"

namespace medley::lint {

/// Canonical rule names, in reporting order.
inline constexpr const char *RuleNondeterminism = "nondeterminism";
inline constexpr const char *RuleUnorderedReduction = "unordered-reduction";
inline constexpr const char *RuleRawConcurrency = "raw-concurrency";
inline constexpr const char *RuleFloatEquality = "float-equality";
inline constexpr const char *RuleErrorCheck = "error-check";
inline constexpr const char *RuleHotpathAlloc = "hotpath-alloc";

/// Runs every rule family applicable to \p Kind over \p Lexed, appending
/// raw (un-suppressed, unsorted) findings to \p Out. \p SourceLines is
/// the file split at newlines, 0-indexed, used to fill
/// Finding::SourceLine.
void runRules(const std::string &Path, FileKind Kind, const LexedFile &Lexed,
              const std::vector<std::string> &SourceLines,
              std::vector<Finding> &Out);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string &S);

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_INTERNAL_H
