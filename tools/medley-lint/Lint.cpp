//===-- tools/medley-lint/Lint.cpp - Lint driver & reports ---------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "medley-lint/Internal.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace medley::lint;

std::string medley::lint::trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

namespace {

/// Splits \p Path at '/' into components.
std::vector<std::string> components(const std::string &Path) {
  std::vector<std::string> Out;
  std::string Part;
  for (char C : Path) {
    if (C == '/') {
      if (!Part.empty())
        Out.push_back(Part);
      Part.clear();
    } else {
      Part += C;
    }
  }
  if (!Part.empty())
    Out.push_back(Part);
  return Out;
}

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  std::string Line;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Line);
      Line.clear();
    } else {
      Line += C;
    }
  }
  Lines.push_back(Line);
  return Lines;
}

bool findingLess(const Finding &A, const Finding &B) {
  if (A.File != B.File)
    return A.File < B.File;
  if (A.Line != B.Line)
    return A.Line < B.Line;
  if (A.Col != B.Col)
    return A.Col < B.Col;
  return A.Rule < B.Rule;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string baselineLineFor(const Finding &F) {
  return F.File + "|" + F.Rule + "|" + F.SourceLine;
}

} // namespace

FileKind medley::lint::classifyPath(const std::string &Path) {
  std::vector<std::string> Parts = components(Path);
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (Parts[I] == "src") {
      if (I + 1 < Parts.size() && Parts[I + 1] == "support")
        return FileKind::SrcSupport;
      return FileKind::Src;
    }
    if (Parts[I] == "apps")
      return FileKind::Apps;
    if (Parts[I] == "bench")
      return FileKind::Bench;
    if (Parts[I] == "tests")
      return FileKind::Tests;
  }
  return FileKind::Other;
}

std::string medley::lint::renderText(const Finding &F) {
  std::ostringstream OS;
  OS << F.File << ":" << F.Line << ":" << F.Col << ": [" << F.Rule << "] "
     << F.Message;
  return OS.str();
}

std::vector<Finding> medley::lint::lintSource(const std::string &Path,
                                              const std::string &Source,
                                              FileKind Kind) {
  LexedFile Lexed = lex(Source);
  std::vector<std::string> Lines = splitLines(Source);
  std::vector<Finding> Raw;
  runRules(Path, Kind, Lexed, Lines, Raw);

  // An allow annotation covers its own line and the next one, so both
  //   stmt;  // medley-lint: allow(rule)
  // and
  //   // medley-lint: allow(rule)
  //   stmt;
  // work. "all" silences every rule at that point.
  std::vector<Finding> Kept;
  for (Finding &F : Raw) {
    bool Allowed = false;
    for (unsigned Line : {F.Line, F.Line > 0 ? F.Line - 1 : 0u}) {
      auto It = Lexed.AllowedByLine.find(Line);
      if (It != Lexed.AllowedByLine.end() &&
          (It->second.count(F.Rule) || It->second.count("all")))
        Allowed = true;
    }
    if (!Allowed)
      Kept.push_back(std::move(F));
  }
  std::sort(Kept.begin(), Kept.end(), findingLess);
  return Kept;
}

std::vector<Finding> medley::lint::lintSource(const std::string &Path,
                                              const std::string &Source) {
  return lintSource(Path, Source, classifyPath(Path));
}

std::vector<std::string>
medley::lint::renderBaseline(const std::vector<Finding> &Findings) {
  std::vector<std::string> Lines;
  Lines.reserve(Findings.size());
  for (const Finding &F : Findings)
    Lines.push_back(baselineLineFor(F));
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

std::vector<Finding>
medley::lint::applyBaseline(std::vector<Finding> Findings,
                            const std::vector<std::string> &Lines) {
  // Multiset of suppressions: each baseline line forgives exactly one
  // matching finding, so a file that grows a second identical problem
  // still fails.
  std::multiset<std::string> Suppressed;
  for (const std::string &Raw : Lines) {
    std::string Line = trim(Raw);
    if (Line.empty() || Line[0] == '#')
      continue;
    Suppressed.insert(Line);
  }
  std::vector<Finding> Kept;
  for (Finding &F : Findings) {
    auto It = Suppressed.find(baselineLineFor(F));
    if (It != Suppressed.end())
      Suppressed.erase(It);
    else
      Kept.push_back(std::move(F));
  }
  std::sort(Kept.begin(), Kept.end(), findingLess);
  return Kept;
}

std::string medley::lint::renderJson(const std::vector<Finding> &Findings) {
  std::vector<Finding> Sorted = Findings;
  std::sort(Sorted.begin(), Sorted.end(), findingLess);
  std::map<std::string, unsigned> ByRule;
  for (const Finding &F : Sorted)
    ++ByRule[F.Rule];

  std::ostringstream OS;
  OS << "{\n  \"findings\": [";
  for (size_t I = 0; I < Sorted.size(); ++I) {
    const Finding &F = Sorted[I];
    OS << (I ? ",\n" : "\n");
    OS << "    {\"file\": \"" << jsonEscape(F.File) << "\", \"line\": "
       << F.Line << ", \"col\": " << F.Col << ", \"rule\": \""
       << jsonEscape(F.Rule) << "\", \"message\": \"" << jsonEscape(F.Message)
       << "\"}";
  }
  OS << (Sorted.empty() ? "],\n" : "\n  ],\n");
  OS << "  \"counts\": {";
  bool First = true;
  for (const auto &[Rule, Count] : ByRule) {
    OS << (First ? "" : ", ") << "\"" << jsonEscape(Rule) << "\": " << Count;
    First = false;
  }
  OS << "},\n  \"total\": " << Sorted.size() << "\n}\n";
  return OS.str();
}
