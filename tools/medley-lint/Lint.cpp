//===-- tools/medley-lint/Lint.cpp - Lint driver & reports ---------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "medley-lint/Internal.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace medley::lint;

std::string medley::lint::trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

namespace {

/// Splits \p Path at '/' into components.
std::vector<std::string> components(const std::string &Path) {
  std::vector<std::string> Out;
  std::string Part;
  for (char C : Path) {
    if (C == '/') {
      if (!Part.empty())
        Out.push_back(Part);
      Part.clear();
    } else {
      Part += C;
    }
  }
  if (!Part.empty())
    Out.push_back(Part);
  return Out;
}

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  std::string Line;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Line);
      Line.clear();
    } else {
      Line += C;
    }
  }
  Lines.push_back(Line);
  return Lines;
}

bool findingLess(const Finding &A, const Finding &B) {
  if (A.File != B.File)
    return A.File < B.File;
  if (A.Line != B.Line)
    return A.Line < B.Line;
  if (A.Col != B.Col)
    return A.Col < B.Col;
  return A.Rule < B.Rule;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Backslash-escapes the baseline key separators inside one field.
std::string escapeKeyField(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\' || C == '|')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

const std::vector<RuleMeta> &medley::lint::ruleCatalog() {
  static const std::vector<RuleMeta> Catalog = {
      {RuleNondeterminism, "Nondeterminism",
       "Wall-clock reads or unseeded entropy in src/"},
      {RuleUnorderedReduction, "UnorderedReduction",
       "Reduction fed by unordered-container iteration order"},
      {RuleRawConcurrency, "RawConcurrency",
       "Raw std::thread/detach/mutex.lock() outside src/support/"},
      {RuleFloatEquality, "FloatEquality",
       "==/!= against floating-point literals outside test assertions"},
      {RuleErrorCheck, "ErrorCheck",
       "support::Error out-parameter the function body never touches"},
      {RuleHotpathAlloc, "HotpathAlloc",
       "Value-returning linalg call in an allocation-free hot-path file"},
      {RuleHotpathEscape, "HotpathEscape",
       "Allocation site reachable from a decision entry point"},
      {RuleLockOrder, "LockOrder",
       "Lock-acquisition-order cycle or lock held across a blocking call"},
      {RuleDeterminismTaint, "DeterminismTaint",
       "Entropy/wall-clock taint reaching an RNG seed or trace sink"},
      {RuleCrossThreadWrite, "CrossThreadWrite",
       "Unsynchronized non-atomic field/global write on a thread-task path"},
      {RuleSnapshotRetention, "SnapshotRetention",
       "ExpertRegistry snapshot cached, returned, or held across "
       "maintain()/blocking calls"},
      {RuleArenaEscape, "ArenaEscape",
       "Arena::allocateArray storage escaping tick scope or used after "
       "reset()"},
  };
  return Catalog;
}

size_t medley::lint::skipBalanced(const std::vector<Token> &Toks, size_t I,
                                  const char *Open, const char *Close) {
  int Depth = 0;
  for (; I < Toks.size(); ++I) {
    if (Toks[I].K == Token::Punct) {
      if (Toks[I].Text == Open)
        ++Depth;
      else if (Toks[I].Text == Close && --Depth == 0)
        return I + 1;
    }
  }
  return Toks.size();
}

size_t medley::lint::skipTemplateArgs(const std::vector<Token> &Toks,
                                      size_t I) {
  int Depth = 0;
  for (; I < Toks.size(); ++I) {
    if (Toks[I].K != Token::Punct)
      continue;
    if (Toks[I].Text == "<")
      ++Depth;
    else if (Toks[I].Text == ">") {
      if (--Depth == 0)
        return I + 1;
    } else if (Toks[I].Text == ">>") {
      Depth -= 2;
      if (Depth <= 0)
        return I + 1;
    } else if (Toks[I].Text == ";" || Toks[I].Text == "{") {
      break; // Not template args after all (comparison chain).
    }
  }
  return I;
}

std::map<unsigned, std::set<std::string>>
medley::lint::expandAllowCoverage(const LexedFile &Lexed) {
  std::map<unsigned, std::set<std::string>> Out;
  const std::vector<Token> &T = Lexed.Tokens;
  for (const auto &[Line, Rules] : Lexed.AllowedByLine) {
    unsigned End = Line + 1;
    // The statement the annotation attaches to: the first token at or
    // after the annotation's line (same line for trailing annotations,
    // the next line for line-above placement). If it starts within the
    // base coverage window, extend coverage to the statement's end.
    size_t I = 0;
    while (I < T.size() && T[I].Line < Line)
      ++I;
    if (I < T.size() && T[I].Line <= Line + 1) {
      int Depth = 0;
      // Bounded walk: malformed code must not turn one annotation into
      // a whole-file suppression.
      for (; I < T.size() && T[I].Line <= Line + 30; ++I) {
        if (T[I].K != Token::Punct)
          continue;
        const std::string &P = T[I].Text;
        if (P == "(" || P == "[")
          ++Depth;
        else if (P == ")" || P == "]") {
          if (--Depth < 0) { // Started mid-expression; stop here.
            End = std::max(End, T[I].Line);
            break;
          }
        } else if (Depth == 0 && (P == ";" || P == "{" || P == "}")) {
          End = std::max(End, T[I].Line);
          break;
        }
      }
    }
    for (unsigned L = Line; L <= End; ++L)
      Out[L].insert(Rules.begin(), Rules.end());
  }
  return Out;
}

std::string medley::lint::renderBaselineKey(const Finding &F) {
  return escapeKeyField(F.File) + "|" + escapeKeyField(F.Rule) + "|" +
         escapeKeyField(F.SourceLine);
}

bool medley::lint::parseBaselineKey(const std::string &Line, std::string &File,
                                    std::string &Rule,
                                    std::string &SourceLine) {
  std::vector<std::string> Fields(1);
  bool Escaped = false;
  for (char C : Line) {
    if (Escaped) {
      Fields.back() += C;
      Escaped = false;
    } else if (C == '\\') {
      Escaped = true;
    } else if (C == '|') {
      Fields.emplace_back();
    } else {
      Fields.back() += C;
    }
  }
  if (Escaped || Fields.size() != 3)
    return false;
  File = Fields[0];
  Rule = Fields[1];
  SourceLine = Fields[2];
  return true;
}

FileKind medley::lint::classifyPath(const std::string &Path) {
  std::vector<std::string> Parts = components(Path);
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (Parts[I] == "src") {
      if (I + 1 < Parts.size() && Parts[I + 1] == "support")
        return FileKind::SrcSupport;
      return FileKind::Src;
    }
    if (Parts[I] == "apps")
      return FileKind::Apps;
    if (Parts[I] == "bench")
      return FileKind::Bench;
    if (Parts[I] == "tests")
      return FileKind::Tests;
  }
  return FileKind::Other;
}

std::string medley::lint::renderText(const Finding &F) {
  std::ostringstream OS;
  OS << F.File << ":" << F.Line << ":" << F.Col << ": [" << F.Rule << "] "
     << F.Message;
  return OS.str();
}

std::vector<Finding> medley::lint::lintSource(const std::string &Path,
                                              const std::string &Source,
                                              FileKind Kind) {
  LexedFile Lexed = lex(Source);
  std::vector<std::string> Lines = splitLines(Source);
  std::vector<Finding> Raw;
  runRules(Path, Kind, Lexed, Lines, Raw);

  // An allow annotation covers its own line, the next one, and — when
  // the statement starting there spans further physical lines — the
  // whole statement, so both
  //   stmt;  // medley-lint: allow(rule)
  // and
  //   // medley-lint: allow(rule)
  //   auto X = stmt(spanning,
  //                 several, lines);
  // work. "all" silences every rule at that point.
  std::map<unsigned, std::set<std::string>> Allowed =
      expandAllowCoverage(Lexed);
  std::vector<Finding> Kept;
  for (Finding &F : Raw) {
    auto It = Allowed.find(F.Line);
    bool Suppressed = It != Allowed.end() && (It->second.count(F.Rule) ||
                                              It->second.count("all"));
    if (!Suppressed)
      Kept.push_back(std::move(F));
  }
  std::sort(Kept.begin(), Kept.end(), findingLess);
  return Kept;
}

std::vector<Finding> medley::lint::lintSource(const std::string &Path,
                                              const std::string &Source) {
  return lintSource(Path, Source, classifyPath(Path));
}

std::vector<std::string>
medley::lint::renderBaseline(const std::vector<Finding> &Findings) {
  std::vector<std::string> Lines;
  Lines.reserve(Findings.size());
  for (const Finding &F : Findings)
    Lines.push_back(renderBaselineKey(F));
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

std::vector<Finding>
medley::lint::applyBaseline(std::vector<Finding> Findings,
                            const std::vector<std::string> &Lines) {
  return applyBaselineDetailed(std::move(Findings), Lines).Kept;
}

BaselineResult
medley::lint::applyBaselineDetailed(std::vector<Finding> Findings,
                                    const std::vector<std::string> &Lines) {
  // Multiset of suppressions: each baseline line forgives exactly one
  // matching finding, so a file that grows a second identical problem
  // still fails. Identical lines are consumed in file order, keeping
  // the used/stale split deterministic.
  std::map<std::string, std::vector<size_t>> ByKey;
  for (size_t I = 0; I < Lines.size(); ++I) {
    std::string Line = trim(Lines[I]);
    if (Line.empty() || Line[0] == '#')
      continue;
    ByKey[Line].push_back(I);
  }

  BaselineResult R;
  std::set<size_t> Used;
  for (Finding &F : Findings) {
    auto It = ByKey.find(renderBaselineKey(F));
    if (It != ByKey.end() && !It->second.empty()) {
      Used.insert(It->second.front());
      It->second.erase(It->second.begin());
    } else {
      R.Kept.push_back(std::move(F));
    }
  }
  std::sort(R.Kept.begin(), R.Kept.end(), findingLess);
  R.UsedLines.assign(Used.begin(), Used.end());
  for (const auto &[Key, Idxs] : ByKey) {
    (void)Key;
    R.StaleLines.insert(R.StaleLines.end(), Idxs.begin(), Idxs.end());
  }
  std::sort(R.StaleLines.begin(), R.StaleLines.end());
  return R;
}

std::string medley::lint::renderJson(const std::vector<Finding> &Findings) {
  std::vector<Finding> Sorted = Findings;
  std::sort(Sorted.begin(), Sorted.end(), findingLess);
  std::map<std::string, unsigned> ByRule;
  for (const Finding &F : Sorted)
    ++ByRule[F.Rule];

  std::ostringstream OS;
  OS << "{\n  \"findings\": [";
  for (size_t I = 0; I < Sorted.size(); ++I) {
    const Finding &F = Sorted[I];
    OS << (I ? ",\n" : "\n");
    OS << "    {\"file\": \"" << jsonEscape(F.File) << "\", \"line\": "
       << F.Line << ", \"col\": " << F.Col << ", \"rule\": \""
       << jsonEscape(F.Rule) << "\", \"message\": \"" << jsonEscape(F.Message)
       << "\"}";
  }
  OS << (Sorted.empty() ? "],\n" : "\n  ],\n");
  OS << "  \"counts\": {";
  bool First = true;
  for (const auto &[Rule, Count] : ByRule) {
    OS << (First ? "" : ", ") << "\"" << jsonEscape(Rule) << "\": " << Count;
    First = false;
  }
  OS << "},\n  \"total\": " << Sorted.size() << "\n}\n";
  return OS.str();
}
