//===-- tools/medley-lint/Lint.h - Determinism lint -------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// medley-lint: a project-specific static-analysis pass over the Medley
/// sources enforcing the invariants the experiment engine's determinism
/// contract rests on (DESIGN.md §10). Twelve rule families:
///
///   nondeterminism     (L1)  wall-clock / unseeded entropy in src/
///   unordered-reduction(L2)  reductions fed by unordered-container order
///   raw-concurrency    (L3)  std::thread / detach / raw mutex.lock()
///                            outside src/support/
///   float-equality     (L4)  ==/!= against floating literals outside
///                            test assertions
///   error-check        (L5)  support::Error* out-params a function body
///                            never touches
///   hotpath-alloc      (L6)  value-returning linalg calls (add/sub/
///                            scale/hadamard) in the decision hot-path
///                            files, which must stay allocation-free
///                            (DESIGN.md §11)
///   hotpath-escape     (L7)  interprocedural: any call path from a
///                            decision entry point to an allocation
///                            site, over the whole-project call graph
///   lock-order         (L8)  interprocedural: lock-acquisition-order
///                            cycles and locks held across blocking
///                            calls
///   determinism-taint  (L9)  interprocedural: entropy/wall-clock taint
///                            flowing into RNG seeds or trace output
///   cross-thread-write (L10) flow-sensitive: non-atomic fields/globals
///                            written lock-free on paths reachable from
///                            thread-task bodies
///   snapshot-retention (L11) flow-sensitive: ExpertRegistry snapshots
///                            cached in fields/globals, returned, or
///                            held across maintain()/blocking calls
///   arena-escape       (L12) flow-sensitive: Arena::allocateArray
///                            storage escaping tick scope or used after
///                            the arena's reset()
///
/// L7–L9 live in Semantic.h/CallGraph.h (DESIGN.md §12); L10–L12 add a
/// per-function CFG + dataflow layer in phase 1 (Cfg.h/Dataflow.h,
/// DESIGN.md §15). This header is the single-file token layer they all
/// build on.
///
/// The analysis is a tokenizer plus per-rule heuristics — deliberately
/// not a real C++ front end. It trades soundness for zero dependencies
/// and sub-second runtime over the whole tree; escape hatches are the
/// `// medley-lint: allow(<rule>)` annotation (same line or the line
/// above) and `--baseline` suppression files for burn-down.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_H
#define MEDLEY_TOOLS_LINT_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace medley::lint {

/// One C++ token with its source position. The lexer understands
/// comments, string/char literals (including raw strings), numbers and
/// multi-character operators; everything it does not model becomes a
/// single-character Punct token.
struct Token {
  enum Kind { Ident, Number, String, Punct };
  Kind K = Punct;
  std::string Text;
  unsigned Line = 0; ///< 1-based.
  unsigned Col = 0;  ///< 1-based.
};

/// The lexed form of one translation unit: the token stream plus the
/// `// medley-lint: allow(rule)` annotations, keyed by the line the
/// comment sits on. An annotation suppresses findings of the named
/// rules on its own line and on the following line.
struct LexedFile {
  std::vector<Token> Tokens;
  std::map<unsigned, std::set<std::string>> AllowedByLine;
};

/// Tokenizes \p Source. Never fails: unterminated constructs consume to
/// end of input.
LexedFile lex(const std::string &Source);

/// Where a file sits in the tree, which decides rule applicability.
enum class FileKind {
  Src,        ///< src/ outside support/ — every rule.
  SrcSupport, ///< src/support/ — concurrency primitives live here.
  Apps,
  Bench,
  Tests, ///< assertion macros exempt from float-equality.
  Other,
};

/// Classifies \p Path by its directory components ("src", "src/support",
/// "apps", "bench", "tests" anywhere in the path).
FileKind classifyPath(const std::string &Path);

/// One diagnostic.
struct Finding {
  std::string File;
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Rule;
  std::string Message;
  /// The trimmed source line, used as the position-independent baseline
  /// key so suppressions survive unrelated edits above the finding.
  std::string SourceLine;
};

/// "file:line:col: [rule] message" — the GCC-style diagnostic form.
std::string renderText(const Finding &F);

/// Runs every applicable rule over \p Source, honouring allow
/// annotations. Findings come back sorted by (file, line, col, rule).
std::vector<Finding> lintSource(const std::string &Path,
                                const std::string &Source);

/// As above with the tree position forced — lets tests exercise
/// src-only rules on fixture snippets.
std::vector<Finding> lintSource(const std::string &Path,
                                const std::string &Source, FileKind Kind);

/// Baseline files: one suppression per line, `file|rule|trimmed source
/// line`, '#' comments and blank lines ignored. Each line suppresses
/// one matching finding (multiset semantics). '\' and '|' inside the
/// fields are backslash-escaped so a source line containing '|' still
/// round-trips (and the key stays parseable).
std::vector<std::string> renderBaseline(const std::vector<Finding> &Findings);

/// The escaped `file|rule|source-line` key for one finding — exactly
/// the line renderBaseline would emit.
std::string renderBaselineKey(const Finding &F);

/// Splits an escaped baseline line back into its three fields. Returns
/// false on malformed input (wrong field count, trailing escape).
bool parseBaselineKey(const std::string &Line, std::string &File,
                      std::string &Rule, std::string &SourceLine);

/// Parses baseline lines (as read from disk) and removes one matching
/// finding per suppression. Returns the survivors, still sorted.
std::vector<Finding> applyBaseline(std::vector<Finding> Findings,
                                   const std::vector<std::string> &Lines);

/// applyBaseline plus an audit of the baseline itself: which input
/// lines actually forgave a finding and which are stale (the finding
/// they suppressed no longer exists). Comment and blank lines appear in
/// neither list. Drives `--prune-baseline` and the CI staleness gate.
struct BaselineResult {
  std::vector<Finding> Kept; ///< Survivors, sorted like applyBaseline.
  std::vector<size_t> UsedLines;  ///< Indices into Lines that matched.
  std::vector<size_t> StaleLines; ///< Indices that matched nothing.
};
BaselineResult applyBaselineDetailed(std::vector<Finding> Findings,
                                     const std::vector<std::string> &Lines);

/// The whole report as pretty-printed JSON: a sorted findings array
/// plus per-rule counts. Stable across runs — no timestamps, no paths
/// outside the findings themselves.
std::string renderJson(const std::vector<Finding> &Findings);

/// The same findings as a SARIF 2.1.0 log (one run, one result per
/// finding) for editor and CI integrations. Stable across runs.
std::string renderSarif(const std::vector<Finding> &Findings);

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_H
