//===-- tools/medley-lint/main.cpp - CLI entry point ---------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// medley-lint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error,
/// 3 clean but the baseline has stale entries (CI burn-down gate; a
/// findings exit takes precedence).
///
///   medley-lint [options] <path>...
///     --root DIR            strip DIR/ from reported paths (stable diffs)
///     --baseline FILE       suppress findings listed in FILE
///     --write-baseline FILE write the current findings as a baseline
///     --prune-baseline      rewrite --baseline FILE dropping entries that
///                           no longer match a finding (keeps comments)
///     --fail-stale-baseline exit 3 when --baseline has stale entries and
///                           nothing else failed
///     --json FILE           write the JSON report to FILE
///     --sarif FILE          write a SARIF 2.1.0 report to FILE
///     --graph-json FILE     dump the linked call graph as JSON
///     --cache FILE          incremental per-file cache (content-hashed,
///                           fingerprinted by the analyzer identity)
///     --jobs N              phase-1 worker threads (default: MEDLEY_JOBS
///                           or hardware concurrency)
///     --no-semantic         token rules only; skip L7–L12 and the graph
///
/// Paths may be files or directories; directories are scanned
/// recursively for *.cpp / *.h. Output is sorted by (file, line, col,
/// rule), independent of --jobs, and carries no timestamps, so
/// consecutive runs diff cleanly.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Semantic.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

using namespace medley::lint;
namespace fs = std::filesystem;

namespace {

int usage(const std::string &Message) {
  std::cerr << "medley-lint: " << Message << "\n"
            << "usage: medley-lint [--root DIR] [--baseline FILE] "
               "[--write-baseline FILE] [--prune-baseline] "
               "[--fail-stale-baseline] [--json FILE] [--sarif FILE] "
               "[--graph-json FILE] [--cache FILE] [--jobs N] "
               "[--no-semantic] <path>...\n";
  return 2;
}

bool lintableFile(const fs::path &P) {
  std::string Ext = P.extension().string();
  return Ext == ".cpp" || Ext == ".h";
}

/// Expands files and recursively-scanned directories into a sorted,
/// de-duplicated file list.
std::vector<std::string> collectFiles(const std::vector<std::string> &Paths,
                                      std::string &Error) {
  std::vector<std::string> Files;
  for (const std::string &Path : Paths) {
    std::error_code EC;
    if (fs::is_directory(Path, EC)) {
      for (fs::recursive_directory_iterator It(Path, EC), End;
           It != End && !EC; It.increment(EC))
        if (It->is_regular_file() && lintableFile(It->path()))
          Files.push_back(It->path().string());
    } else if (fs::is_regular_file(Path, EC)) {
      Files.push_back(Path);
    } else {
      Error = "no such file or directory: " + Path;
      return {};
    }
  }
  std::sort(Files.begin(), Files.end());
  Files.erase(std::unique(Files.begin(), Files.end()), Files.end());
  return Files;
}

/// Reported path: \p Path with the --root prefix stripped, so reports
/// are machine-independent.
std::string reportPath(const std::string &Path, const std::string &Root) {
  if (Root.empty())
    return Path;
  std::string Prefix = Root;
  if (!Prefix.empty() && Prefix.back() != '/')
    Prefix += '/';
  if (Path.rfind(Prefix, 0) == 0)
    return Path.substr(Prefix.size());
  return Path;
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << Content;
  return static_cast<bool>(Out);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Root, BaselinePath, WriteBaselinePath, JsonPath, SarifPath,
      GraphJsonPath;
  bool PruneBaseline = false;
  bool FailStaleBaseline = false;
  AnalyzeOptions Opts;
  std::vector<std::string> Paths;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    if (Arg == "--root") {
      if (!Value(Root))
        return usage("--root needs a directory");
    } else if (Arg == "--baseline") {
      if (!Value(BaselinePath))
        return usage("--baseline needs a file");
    } else if (Arg == "--write-baseline") {
      if (!Value(WriteBaselinePath))
        return usage("--write-baseline needs a file");
    } else if (Arg == "--prune-baseline") {
      PruneBaseline = true;
    } else if (Arg == "--fail-stale-baseline") {
      FailStaleBaseline = true;
    } else if (Arg == "--json") {
      if (!Value(JsonPath))
        return usage("--json needs a file");
    } else if (Arg == "--sarif") {
      if (!Value(SarifPath))
        return usage("--sarif needs a file");
    } else if (Arg == "--graph-json") {
      if (!Value(GraphJsonPath))
        return usage("--graph-json needs a file");
    } else if (Arg == "--cache") {
      if (!Value(Opts.CachePath))
        return usage("--cache needs a file");
    } else if (Arg == "--jobs") {
      std::string N;
      if (!Value(N))
        return usage("--jobs needs a count");
      try {
        Opts.Jobs = static_cast<unsigned>(std::stoul(N));
      } catch (...) {
        return usage("--jobs needs a positive integer");
      }
    } else if (Arg == "--no-semantic") {
      Opts.Semantic = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage("project-specific determinism & concurrency lint");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage("unknown option: " + Arg);
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty())
    return usage("no paths given");
  if ((PruneBaseline || FailStaleBaseline) && BaselinePath.empty())
    return usage("--prune-baseline/--fail-stale-baseline need --baseline");

  std::string CollectError;
  std::vector<std::string> Files = collectFiles(Paths, CollectError);
  if (!CollectError.empty())
    return usage(CollectError);

  std::vector<SourceFile> Sources;
  Sources.reserve(Files.size());
  for (const std::string &File : Files) {
    std::ifstream In(File, std::ios::binary);
    if (!In)
      return usage("cannot read: " + File);
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Sources.push_back({reportPath(File, Root), Buffer.str()});
  }

  AnalyzeResult Result = analyzeSources(Sources, Opts);
  std::vector<Finding> Findings = std::move(Result.Findings);

  if (!GraphJsonPath.empty() &&
      !writeFile(GraphJsonPath, renderGraphJson(Result.Graph)))
    return usage("cannot write graph: " + GraphJsonPath);

  if (!WriteBaselinePath.empty()) {
    std::ostringstream Out;
    Out << "# medley-lint baseline — one suppression per line:\n"
        << "# file|rule|trimmed source line ('|' and '\\' are "
           "backslash-escaped)\n";
    for (const std::string &Line : renderBaseline(Findings))
      Out << Line << "\n";
    if (!writeFile(WriteBaselinePath, Out.str()))
      return usage("cannot write baseline: " + WriteBaselinePath);
  }

  size_t StaleBaselineLines = 0;
  if (!BaselinePath.empty()) {
    std::ifstream In(BaselinePath);
    if (!In)
      return usage("cannot read baseline: " + BaselinePath);
    std::vector<std::string> Lines;
    std::string Line;
    while (std::getline(In, Line))
      Lines.push_back(Line);
    BaselineResult BR = applyBaselineDetailed(std::move(Findings), Lines);
    Findings = std::move(BR.Kept);
    StaleBaselineLines = BR.StaleLines.size();
    for (size_t I : BR.StaleLines)
      std::cerr << "medley-lint: stale baseline entry (" << BaselinePath
                << ":" << (I + 1) << "): " << Lines[I] << "\n";
    if (PruneBaseline) {
      // Rewrite in place: comments and blank lines survive, used
      // suppressions keep their original order, stale ones drop out.
      std::set<size_t> Stale(BR.StaleLines.begin(), BR.StaleLines.end());
      std::ostringstream Out;
      for (size_t I = 0; I < Lines.size(); ++I)
        if (!Stale.count(I))
          Out << Lines[I] << "\n";
      if (!writeFile(BaselinePath, Out.str()))
        return usage("cannot rewrite baseline: " + BaselinePath);
    }
  }

  if (!JsonPath.empty() && !writeFile(JsonPath, renderJson(Findings)))
    return usage("cannot write report: " + JsonPath);
  if (!SarifPath.empty() && !writeFile(SarifPath, renderSarif(Findings)))
    return usage("cannot write sarif: " + SarifPath);

  for (const Finding &F : Findings)
    std::cout << renderText(F) << "\n";
  std::cout << "medley-lint: " << Files.size() << " files, "
            << Findings.size() << " finding"
            << (Findings.size() == 1 ? "" : "s") << "\n";
  if (!Findings.empty())
    return 1;
  return (FailStaleBaseline && StaleBaselineLines) ? 3 : 0;
}
