//===-- tools/medley-lint/main.cpp - CLI entry point ---------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// medley-lint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
///
///   medley-lint [options] <path>...
///     --root DIR            strip DIR/ from reported paths (stable diffs)
///     --baseline FILE       suppress findings listed in FILE
///     --write-baseline FILE write the current findings as a baseline
///     --json FILE           write the JSON report to FILE
///
/// Paths may be files or directories; directories are scanned
/// recursively for *.cpp / *.h. Output is sorted by (file, line, col,
/// rule) and carries no timestamps, so consecutive runs diff cleanly.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <tuple>

using namespace medley::lint;
namespace fs = std::filesystem;

namespace {

int usage(const std::string &Message) {
  std::cerr << "medley-lint: " << Message << "\n"
            << "usage: medley-lint [--root DIR] [--baseline FILE] "
               "[--write-baseline FILE] [--json FILE] <path>...\n";
  return 2;
}

bool lintableFile(const fs::path &P) {
  std::string Ext = P.extension().string();
  return Ext == ".cpp" || Ext == ".h";
}

/// Expands files and recursively-scanned directories into a sorted,
/// de-duplicated file list.
std::vector<std::string> collectFiles(const std::vector<std::string> &Paths,
                                      std::string &Error) {
  std::vector<std::string> Files;
  for (const std::string &Path : Paths) {
    std::error_code EC;
    if (fs::is_directory(Path, EC)) {
      for (fs::recursive_directory_iterator It(Path, EC), End;
           It != End && !EC; It.increment(EC))
        if (It->is_regular_file() && lintableFile(It->path()))
          Files.push_back(It->path().string());
    } else if (fs::is_regular_file(Path, EC)) {
      Files.push_back(Path);
    } else {
      Error = "no such file or directory: " + Path;
      return {};
    }
  }
  std::sort(Files.begin(), Files.end());
  Files.erase(std::unique(Files.begin(), Files.end()), Files.end());
  return Files;
}

/// Reported path: \p Path with the --root prefix stripped, so reports
/// are machine-independent.
std::string reportPath(const std::string &Path, const std::string &Root) {
  if (Root.empty())
    return Path;
  std::string Prefix = Root;
  if (!Prefix.empty() && Prefix.back() != '/')
    Prefix += '/';
  if (Path.rfind(Prefix, 0) == 0)
    return Path.substr(Prefix.size());
  return Path;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Root, BaselinePath, WriteBaselinePath, JsonPath;
  std::vector<std::string> Paths;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    if (Arg == "--root") {
      if (!Value(Root))
        return usage("--root needs a directory");
    } else if (Arg == "--baseline") {
      if (!Value(BaselinePath))
        return usage("--baseline needs a file");
    } else if (Arg == "--write-baseline") {
      if (!Value(WriteBaselinePath))
        return usage("--write-baseline needs a file");
    } else if (Arg == "--json") {
      if (!Value(JsonPath))
        return usage("--json needs a file");
    } else if (Arg == "--help" || Arg == "-h") {
      usage("project-specific determinism & concurrency lint");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage("unknown option: " + Arg);
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty())
    return usage("no paths given");

  std::string CollectError;
  std::vector<std::string> Files = collectFiles(Paths, CollectError);
  if (!CollectError.empty())
    return usage(CollectError);

  std::vector<Finding> Findings;
  for (const std::string &File : Files) {
    std::ifstream In(File);
    if (!In)
      return usage("cannot read: " + File);
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    std::vector<Finding> FileFindings =
        lintSource(reportPath(File, Root), Buffer.str());
    Findings.insert(Findings.end(),
                    std::make_move_iterator(FileFindings.begin()),
                    std::make_move_iterator(FileFindings.end()));
  }

  if (!WriteBaselinePath.empty()) {
    std::ofstream Out(WriteBaselinePath);
    if (!Out)
      return usage("cannot write baseline: " + WriteBaselinePath);
    Out << "# medley-lint baseline — one suppression per line:\n"
        << "# file|rule|trimmed source line\n";
    for (const std::string &Line : renderBaseline(Findings))
      Out << Line << "\n";
  }

  if (!BaselinePath.empty()) {
    std::ifstream In(BaselinePath);
    if (!In)
      return usage("cannot read baseline: " + BaselinePath);
    std::vector<std::string> Lines;
    std::string Line;
    while (std::getline(In, Line))
      Lines.push_back(Line);
    Findings = applyBaseline(std::move(Findings), Lines);
  }

  // Findings arrive sorted per file and files are visited in sorted
  // order, but re-sort globally so --root stripping cannot reorder.
  std::sort(Findings.begin(), Findings.end(),
            [](const Finding &A, const Finding &B) {
              return std::tie(A.File, A.Line, A.Col, A.Rule) <
                     std::tie(B.File, B.Line, B.Col, B.Rule);
            });

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out)
      return usage("cannot write report: " + JsonPath);
    Out << renderJson(Findings);
  }

  for (const Finding &F : Findings)
    std::cout << renderText(F) << "\n";
  std::cout << "medley-lint: " << Files.size() << " files, "
            << Findings.size() << " finding"
            << (Findings.size() == 1 ? "" : "s") << "\n";
  return Findings.empty() ? 0 : 1;
}
