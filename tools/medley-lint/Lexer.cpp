//===-- tools/medley-lint/Lexer.cpp - C++ tokenizer ----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "medley-lint/Lint.h"

#include <cctype>

using namespace medley::lint;

namespace {

/// Cursor over the source with line/column bookkeeping.
class Cursor {
public:
  explicit Cursor(const std::string &Source) : S(Source) {}

  bool done() const { return I >= S.size(); }
  char peek(size_t Ahead = 0) const {
    return I + Ahead < S.size() ? S[I + Ahead] : '\0';
  }
  unsigned line() const { return Line; }
  unsigned col() const { return Col; }

  char advance() {
    char C = S[I++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

private:
  const std::string &S;
  size_t I = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

bool isIdentStart(char C) { return std::isalpha(static_cast<unsigned char>(C)) || C == '_'; }
bool isIdentChar(char C) { return std::isalnum(static_cast<unsigned char>(C)) || C == '_'; }

/// Multi-character operators the rules care about; longest match first.
/// Everything else falls back to single-character Punct tokens.
const char *const Operators[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "+=",  "-=",  "*=", "/=", "%=", "&=", "|=", "^=",
    "<<",  ">>",  "++",  "--",
};

/// Records `medley-lint: allow(a, b)` annotations found in \p Comment.
void parseAllow(const std::string &Comment, unsigned Line, LexedFile &Out) {
  const std::string Marker = "medley-lint:";
  size_t At = Comment.find(Marker);
  if (At == std::string::npos)
    return;
  size_t Open = Comment.find("allow(", At + Marker.size());
  if (Open == std::string::npos)
    return;
  size_t Close = Comment.find(')', Open);
  if (Close == std::string::npos)
    return;
  std::string List = Comment.substr(Open + 6, Close - Open - 6);
  std::string Rule;
  auto Flush = [&] {
    if (!Rule.empty())
      Out.AllowedByLine[Line].insert(Rule);
    Rule.clear();
  };
  for (char C : List) {
    if (C == ',')
      Flush();
    else if (!std::isspace(static_cast<unsigned char>(C)))
      Rule += C;
  }
  Flush();
}

} // namespace

LexedFile medley::lint::lex(const std::string &Source) {
  LexedFile Out;
  Cursor C(Source);

  while (!C.done()) {
    char Ch = C.peek();

    if (std::isspace(static_cast<unsigned char>(Ch))) {
      C.advance();
      continue;
    }

    // Preprocessor directive: consume to end of line (honouring
    // backslash continuations). '#' has no token-level meaning outside
    // directives, and leaking `include < vector >` into the stream makes
    // the scope scanner misread the next `Name {...}` as a brace
    // initializer, swallowing whole class bodies.
    if (Ch == '#') {
      while (!C.done() && C.peek() != '\n') {
        char D = C.advance();
        if (D == '\\' && C.peek() == '\n')
          C.advance(); // continuation: the directive spans this newline
      }
      continue;
    }

    // Line comment — the annotation carrier.
    if (Ch == '/' && C.peek(1) == '/') {
      unsigned Line = C.line();
      std::string Text;
      while (!C.done() && C.peek() != '\n')
        Text += C.advance();
      parseAllow(Text, Line, Out);
      continue;
    }

    // Block comment; an annotation inside applies at its starting line.
    if (Ch == '/' && C.peek(1) == '*') {
      unsigned Line = C.line();
      std::string Text;
      C.advance();
      C.advance();
      while (!C.done() && !(C.peek() == '*' && C.peek(1) == '/'))
        Text += C.advance();
      if (!C.done()) {
        C.advance();
        C.advance();
      }
      parseAllow(Text, Line, Out);
      continue;
    }

    // Raw string literal: R"delim(...)delim" — no escapes inside.
    if (Ch == 'R' && C.peek(1) == '"') {
      Token T{Token::String, "", C.line(), C.col()};
      C.advance(); // R
      C.advance(); // "
      std::string Delim;
      while (!C.done() && C.peek() != '(')
        Delim += C.advance();
      if (!C.done())
        C.advance(); // (
      std::string Close = ")" + Delim + "\"";
      std::string Body;
      while (!C.done()) {
        Body += C.advance();
        if (Body.size() >= Close.size() &&
            Body.compare(Body.size() - Close.size(), Close.size(), Close) == 0)
          break;
      }
      T.Text = Body.substr(0, Body.size() >= Close.size()
                                  ? Body.size() - Close.size()
                                  : Body.size());
      Out.Tokens.push_back(std::move(T));
      continue;
    }

    // String / char literal with escapes.
    if (Ch == '"' || Ch == '\'') {
      Token T{Token::String, "", C.line(), C.col()};
      char Quote = C.advance();
      while (!C.done() && C.peek() != Quote) {
        char E = C.advance();
        T.Text += E;
        if (E == '\\' && !C.done())
          T.Text += C.advance();
      }
      if (!C.done())
        C.advance(); // closing quote
      Out.Tokens.push_back(std::move(T));
      continue;
    }

    if (isIdentStart(Ch)) {
      Token T{Token::Ident, "", C.line(), C.col()};
      while (!C.done() && isIdentChar(C.peek()))
        T.Text += C.advance();
      Out.Tokens.push_back(std::move(T));
      continue;
    }

    // Number: integers, floats, exponents, hex, suffixes, digit
    // separators. A leading '.' followed by a digit is a float.
    if (std::isdigit(static_cast<unsigned char>(Ch)) ||
        (Ch == '.' && std::isdigit(static_cast<unsigned char>(C.peek(1))))) {
      Token T{Token::Number, "", C.line(), C.col()};
      bool Hex = false;
      while (!C.done()) {
        char N = C.peek();
        if (isIdentChar(N) || N == '.' || N == '\'') {
          if (T.Text == "0" && (N == 'x' || N == 'X'))
            Hex = true;
          T.Text += C.advance();
        } else if ((N == '+' || N == '-') && !T.Text.empty() && !Hex &&
                   (T.Text.back() == 'e' || T.Text.back() == 'E')) {
          T.Text += C.advance(); // exponent sign
        } else {
          break;
        }
      }
      Out.Tokens.push_back(std::move(T));
      continue;
    }

    // Operators, longest match first.
    bool Matched = false;
    for (const char *Op : Operators) {
      size_t Len = std::string(Op).size();
      bool Ok = true;
      for (size_t I = 0; I < Len && Ok; ++I)
        Ok = C.peek(I) == Op[I];
      if (Ok) {
        Token T{Token::Punct, Op, C.line(), C.col()};
        for (size_t I = 0; I < Len; ++I)
          C.advance();
        Out.Tokens.push_back(std::move(T));
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;

    Token T{Token::Punct, std::string(1, Ch), C.line(), C.col()};
    C.advance();
    Out.Tokens.push_back(std::move(T));
  }

  return Out;
}
