//===-- tools/medley-lint/Index.cpp - Per-file symbol indexer ------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heuristic single-pass C++ reader producing the FileIndex: a scope
/// walk (namespaces, classes) that recognizes function definitions, and
/// per body a linear scan for call/allocation/lock sites plus a
/// statement-level pass for the taint flows. No AST, no preprocessor:
/// what the token stream cannot express (templated call names, macro
/// expansion) is under-approximated, never guessed.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Cfg.h"
#include "medley-lint/Dataflow.h"
#include "medley-lint/Index.h"
#include "medley-lint/Internal.h"

#include <algorithm>
#include <array>
#include <sstream>

using namespace medley::lint;

namespace {

using Tokens = std::vector<Token>;

bool punctIs(const Tokens &T, size_t I, const char *Text) {
  return I < T.size() && T[I].K == Token::Punct && T[I].Text == Text;
}

bool identIs(const Tokens &T, size_t I, const char *Text) {
  return I < T.size() && T[I].K == Token::Ident && T[I].Text == Text;
}

template <size_t N>
bool oneOf(const std::string &S, const std::array<const char *, N> &Set) {
  for (const char *E : Set)
    if (S == E)
      return true;
  return false;
}

/// Keywords that can introduce a `name(` pattern without naming a
/// function definition or call.
bool isControlKw(const std::string &S) {
  static const std::array<const char *, 24> Kw = {
      "if",       "for",          "while",     "switch",   "catch",
      "return",   "sizeof",       "alignof",   "alignas",  "decltype",
      "new",      "delete",       "throw",     "else",     "do",
      "case",     "goto",         "template",  "typename", "using",
      "typedef",  "static_assert","noexcept",  "requires"};
  return oneOf(S, Kw);
}

/// Identifiers that may legitimately precede a call (everything else
/// before `name(` means `name` is a declarator, e.g. `Vec add(`).
bool precedesCall(const std::string &S) {
  static const std::array<const char *, 5> Kw = {"return", "else", "do",
                                                 "throw", "co_return"};
  return oneOf(S, Kw);
}

bool isGuardType(const std::string &S) {
  static const std::array<const char *, 4> G = {"lock_guard", "scoped_lock",
                                                "unique_lock", "shared_lock"};
  return oneOf(S, G);
}

bool isGrowthMember(const std::string &S) {
  static const std::array<const char *, 7> G = {
      "push_back", "emplace_back", "insert",       "emplace",
      "append",    "push_front",   "emplace_front"};
  return oneOf(S, G);
}

bool isAllocCall(const std::string &S) {
  static const std::array<const char *, 8> A = {
      "malloc",      "calloc",      "realloc",  "strdup",
      "aligned_alloc", "make_unique", "make_shared", "to_string"};
  return oneOf(S, A);
}

bool isLinalgValueCall(const std::string &S) {
  static const std::array<const char *, 4> L = {"add", "sub", "scale",
                                                "hadamard"};
  return oneOf(S, L);
}

bool isClockName(const std::string &S) {
  return S == "system_clock" || S == "steady_clock" ||
         S == "high_resolution_clock";
}

bool isEntropyCallName(const std::string &S) {
  return S == "rand" || S == "srand" || S == "time" || S == "clock" ||
         S == "getenv";
}

/// Sinks the taint analysis watches: RNG (re)seeding and engine
/// construction. Stream/trace output is detected structurally.
bool isSeedSink(const std::string &S) {
  static const std::array<const char *, 7> K = {
      "seed",        "srand",       "mt19937", "mt19937_64",
      "minstd_rand", "default_random_engine", "Rng"};
  return oneOf(S, K);
}

/// Calls that move a lambda argument onto another thread: the lambda's
/// body becomes a synthetic IsThreadBody function node (DESIGN.md §15).
bool isSpawnCall(const std::string &S) {
  static const std::array<const char *, 6> K = {
      "parallelFor", "submit", "retrainAsync", "async", "thread",
      "emplace_back"};
  return oneOf(S, K);
}

/// The indexer proper: one instance per file.
class Indexer {
public:
  Indexer(const Tokens &Toks, const std::vector<std::string> &Lines,
          FileIndex &Out)
      : T(Toks), Lines(Lines), Out(Out) {}

  void run() {
    std::vector<std::string> Ns, Cls;
    parseScope(0, T.size(), Ns, Cls);
  }

private:
  const Tokens &T;
  const std::vector<std::string> &Lines;
  FileIndex &Out;
  /// Token ranges of task lambdas extracted from the function currently
  /// being finished; the linear passes skip them so their events are
  /// attributed to the synthetic lambda node, not the spawner.
  std::vector<std::pair<size_t, size_t>> CurSkips;

  bool skipAt(size_t I, size_t &End) const {
    for (const std::pair<size_t, size_t> &R : CurSkips)
      if (I >= R.first && I < R.second) {
        End = R.second;
        return true;
      }
    return false;
  }

  std::string lineText(unsigned Line) const {
    if (Line >= 1 && Line <= Lines.size())
      return trim(Lines[Line - 1]);
    return "";
  }

  //===--------------------------------------------------------------------===//
  // Scope walk
  //===--------------------------------------------------------------------===//

  void parseScope(size_t B, size_t E, std::vector<std::string> &Ns,
                  std::vector<std::string> &Cls) {
    size_t I = B;
    while (I < E) {
      const Token &Tok = T[I];
      if (Tok.K == Token::Punct) {
        if (Tok.Text == "{") {
          I = skipBalanced(T, I, "{", "}"); // stray block / initializer
          continue;
        }
        ++I;
        continue;
      }
      if (Tok.K != Token::Ident) {
        ++I;
        continue;
      }

      if (Tok.Text == "namespace") {
        I = parseNamespace(I, E, Ns, Cls);
        continue;
      }
      if (Tok.Text == "class" || Tok.Text == "struct" || Tok.Text == "union") {
        I = parseClass(I, E, Ns, Cls);
        continue;
      }
      if (Tok.Text == "enum") {
        size_t J = I + 1;
        while (J < E && !punctIs(T, J, "{") && !punctIs(T, J, ";"))
          ++J;
        I = punctIs(T, J, "{") ? skipBalanced(T, J, "{", "}") : J + 1;
        continue;
      }
      if (Tok.Text == "template" && punctIs(T, I + 1, "<")) {
        I = skipTemplateArgs(T, I + 1);
        continue;
      }

      size_t Next;
      if (tryFunctionDef(I, E, Ns, Cls, Next)) {
        I = Next;
        continue;
      }
      if (tryFieldDecl(I, E, Cls.empty() ? "" : Cls.back(), Next)) {
        I = Next;
        continue;
      }
      ++I;
    }
  }

  /// Instance-field / global variable declarations at class or
  /// namespace scope: `std::atomic<uint64_t> Epoch{0};`,
  /// `support::FaultStats *Stats = nullptr;`, `std::mutex Mu;`.
  /// Consumes the statement on success (a field may or may not be
  /// recorded); returns false for anything that is not clearly a
  /// variable declaration, leaving the scan untouched.
  bool tryFieldDecl(size_t I, size_t E, const std::string &Class,
                    size_t &Next) {
    if (T[I].K != Token::Ident)
      return false;
    const std::string &First = T[I].Text;
    if ((First == "public" || First == "private" || First == "protected") &&
        punctIs(T, I + 1, ":")) {
      Next = I + 2;
      return true;
    }
    if (isControlKw(First) || First == "operator" || First == "friend" ||
        First == "extern" || First == "virtual" || First == "explicit")
      return false;

    size_t J = I;
    size_t LastIdent = 0;
    size_t NamePos = 0;
    bool Ended = false;
    while (J < E && !Ended) {
      const Token &K = T[J];
      if (K.K == Token::Ident) {
        LastIdent = J;
        if (punctIs(T, J + 1, "<")) {
          size_t Skip = skipTemplateArgs(T, J + 1);
          if (Skip > J + 2) {
            J = Skip;
            continue;
          }
        }
        ++J;
        continue;
      }
      if (K.K != Token::Punct)
        return false;
      const std::string &P = K.Text;
      if (P == "(")
        return false; // function declaration/definition or expression
      if (P == "[") {
        J = skipBalanced(T, J, "[", "]"); // array extent
        continue;
      }
      if (P == "{") {
        // Brace init directly after the declarator name.
        if (!LastIdent || J != LastIdent + 1)
          return false;
        NamePos = LastIdent;
        J = skipBalanced(T, J, "{", "}");
        continue;
      }
      if (P == "=") {
        if (!LastIdent)
          return false;
        NamePos = LastIdent;
        // Initializer: consume to the top-level ';'.
        int D = 0;
        while (J < E) {
          if (T[J].K == Token::Punct) {
            const std::string &Q = T[J].Text;
            if (Q == "(" || Q == "[" || Q == "{")
              ++D;
            else if (Q == ")" || Q == "]" || Q == "}")
              --D;
            else if (Q == ";" && D == 0)
              break;
          }
          ++J;
        }
        Ended = true;
        break;
      }
      if (P == ";") {
        if (!NamePos)
          NamePos = LastIdent;
        Ended = true;
        break;
      }
      if (P == "::" || P == "*" || P == "&" || P == ",") {
        ++J;
        continue;
      }
      return false;
    }
    if (!Ended || !NamePos || NamePos <= I)
      return false;
    Next = J + 1;

    bool Atomic = false, Mutex = false, Skip = false;
    for (size_t K = I; K < NamePos; ++K) {
      if (T[K].K != Token::Ident)
        continue;
      const std::string &Ty = T[K].Text;
      if (Ty == "atomic" || Ty.rfind("atomic_", 0) == 0)
        Atomic = true;
      else if (Ty.find("mutex") != std::string::npos ||
               Ty == "condition_variable" || Ty == "once_flag")
        Mutex = true;
      else if (Ty == "constexpr" || Ty == "thread_local")
        Skip = true; // compile-time or thread-private — never shared
    }
    if (!Skip) {
      FieldDecl FD;
      FD.Class = Class;
      FD.Name = T[NamePos].Text;
      FD.Atomic = Atomic;
      FD.Mutex = Mutex;
      Out.Fields.push_back(std::move(FD));
    }
    return true;
  }

  size_t parseNamespace(size_t I, size_t E, std::vector<std::string> &Ns,
                        std::vector<std::string> &Cls) {
    size_t J = I + 1;
    std::vector<std::string> Names;
    while (J < E && T[J].K == Token::Ident) {
      Names.push_back(T[J].Text);
      ++J;
      if (punctIs(T, J, "::"))
        ++J;
      else
        break;
    }
    if (punctIs(T, J, "{")) {
      size_t End = skipBalanced(T, J, "{", "}");
      for (const std::string &N : Names)
        Ns.push_back(N);
      parseScope(J + 1, End > 0 ? End - 1 : End, Ns, Cls);
      for (size_t K = 0; K < Names.size(); ++K)
        Ns.pop_back();
      return End;
    }
    // Alias (`namespace a = b;`) or using-directive fragment: to ';'.
    while (J < E && !punctIs(T, J, ";"))
      ++J;
    return J + 1;
  }

  size_t parseClass(size_t I, size_t E, std::vector<std::string> &Ns,
                    std::vector<std::string> &Cls) {
    size_t J = I + 1;
    std::string Name;
    if (J < E && T[J].K == Token::Ident) {
      Name = T[J].Text;
      ++J;
    }
    if (punctIs(T, J, "<")) // specialization — treated as the primary
      J = skipTemplateArgs(T, J);
    // Scan the head (final, base list) to '{' or ';'. A '(' means this
    // was a function/variable after all (`struct tm now(...)`).
    while (J < E && !punctIs(T, J, "{") && !punctIs(T, J, ";") &&
           !punctIs(T, J, "("))
      ++J;
    if (punctIs(T, J, "{")) {
      size_t End = skipBalanced(T, J, "{", "}");
      if (!Name.empty()) {
        Cls.push_back(Name);
        parseScope(J + 1, End > 0 ? End - 1 : End, Ns, Cls);
        Cls.pop_back();
      }
      return End;
    }
    return I + 1; // forward declaration or lookalike: re-scan normally
  }

  //===--------------------------------------------------------------------===//
  // Function definitions
  //===--------------------------------------------------------------------===//

  bool tryFunctionDef(size_t I, size_t E, const std::vector<std::string> &Ns,
                      const std::vector<std::string> &Cls, size_t &Next) {
    if (T[I].K != Token::Ident || !punctIs(T, I + 1, "("))
      return false;
    if (isControlKw(T[I].Text) || T[I].Text == "operator")
      return false;

    // Explicit qualifier chain written at the definition:
    // `void MixtureOfExperts::select(...)`.
    std::vector<std::string> Quals;
    size_t Back = I;
    bool Dtor = Back > 0 && punctIs(T, Back - 1, "~");
    if (Dtor)
      --Back;
    while (Back >= 2 && punctIs(T, Back - 1, "::") &&
           T[Back - 2].K == Token::Ident) {
      Quals.insert(Quals.begin(), T[Back - 2].Text);
      Back -= 2;
    }

    size_t AfterParams = skipBalanced(T, I + 1, "(", ")");
    size_t J = AfterParams;
    bool SeenColon = false; // inside a constructor initializer list
    while (J < E) {
      const Token &K = T[J];
      if (K.K != Token::Punct) {
        ++J; // const / noexcept / override / final / try / type names
        continue;
      }
      const std::string &P = K.Text;
      if (P == "{") {
        if (SeenColon && J > 0) {
          // Brace-init of a base/member (`Base{x}`) vs the body: the
          // body's '{' follows ')' or '}' of the previous initializer.
          const Token &Prev = T[J - 1];
          bool BraceInit = Prev.K == Token::Ident ||
                           (Prev.K == Token::Punct &&
                            (Prev.Text == ">" || Prev.Text == "::"));
          if (BraceInit) {
            J = skipBalanced(T, J, "{", "}");
            continue;
          }
        }
        size_t BodyEnd = skipBalanced(T, J, "{", "}");
        FunctionInfo Fn;
        Fn.Name = (Dtor ? "~" : "") + T[I].Text;
        Fn.Class = !Quals.empty() ? Quals.back()
                                  : (!Cls.empty() ? Cls.back() : "");
        std::string Qual;
        auto Append = [&Qual](const std::string &Part) {
          if (!Qual.empty())
            Qual += "::";
          Qual += Part;
        };
        for (const std::string &N : Ns)
          Append(N);
        for (const std::string &C : Cls)
          Append(C);
        for (const std::string &Q : Quals)
          Append(Q);
        Append(Fn.Name);
        Fn.Qual = Qual;
        Fn.Line = T[I].Line;
        Fn.Col = T[I].Col;
        Fn.LineText = lineText(Fn.Line);
        size_t BodyB = J + 1, BodyE = BodyEnd > 0 ? BodyEnd - 1 : BodyEnd;
        finishFunction(std::move(Fn), I + 2, AfterParams > I + 2
                                                 ? AfterParams - 1
                                                 : I + 2,
                       BodyB, BodyE, {}, 0);
        Next = BodyEnd;
        return true;
      }
      if (P == ";" || (!SeenColon && (P == "," || P == "=")))
        return false; // declaration, `= default`, or an expression
                      // (after ':' commas separate mem-initializers)
      if (P == "(") {
        J = skipBalanced(T, J, "(", ")");
        continue;
      }
      if (P == "<") {
        J = skipTemplateArgs(T, J);
        continue;
      }
      if (P == ":")
        SeenColon = true;
      ++J;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Function finishing: linear passes, CFG, spawned task lambdas
  //===--------------------------------------------------------------------===//

  /// A lambda argument of a spawn call inside a function body.
  struct LambdaSpec {
    size_t Begin = 0, End = 0;     ///< Full `[..](..){..}` token range.
    size_t ParamB = 0, ParamE = 0; ///< Parameter range (inside parens).
    size_t BodyB = 0, BodyE = 0;   ///< Body range (inside braces).
    unsigned Line = 0, Col = 0;
    /// By-value and init captures: copies owned by the task.
    std::vector<std::string> ValueCaptures;
  };

  /// Finds lambdas passed to ThreadPool-style spawn calls inside
  /// [B, E). Each becomes a synthetic IsThreadBody function.
  void findSpawnLambdas(size_t B, size_t E, std::vector<LambdaSpec> &Specs) {
    for (size_t I = B; I < E; ++I) {
      if (T[I].K != Token::Ident || !isSpawnCall(T[I].Text) ||
          !punctIs(T, I + 1, "("))
        continue;
      size_t ArgsEnd = skipBalanced(T, I + 1, "(", ")");
      for (size_t J = I + 2; J + 1 < ArgsEnd; ++J) {
        if (!punctIs(T, J, "[") ||
            !(punctIs(T, J - 1, "(") || punctIs(T, J - 1, ",")))
          continue;
        LambdaSpec L;
        if (!parseLambda(J, ArgsEnd > 0 ? ArgsEnd - 1 : ArgsEnd, L))
          continue;
        Specs.push_back(std::move(L));
        J = Specs.back().End - 1;
      }
      I = ArgsEnd > I ? ArgsEnd - 1 : I;
    }
  }

  bool parseLambda(size_t LB, size_t E, LambdaSpec &L) {
    size_t CapEnd = skipBalanced(T, LB, "[", "]"); // one past ']'
    if (CapEnd >= E)
      return false;
    // Captures: by-value and init captures become task-local names.
    {
      std::vector<std::string> Parts;
      size_t PartB = LB + 1;
      int D = 0;
      for (size_t K = LB + 1; K + 1 < CapEnd; ++K) {
        if (T[K].K != Token::Punct)
          continue;
        const std::string &P = T[K].Text;
        if (P == "(" || P == "[" || P == "{")
          ++D;
        else if (P == ")" || P == "]" || P == "}")
          --D;
        else if (P == "," && D == 0) {
          capturedName(PartB, K, L.ValueCaptures);
          PartB = K + 1;
        }
      }
      capturedName(PartB, CapEnd > 0 ? CapEnd - 1 : CapEnd, L.ValueCaptures);
    }
    size_t P = CapEnd;
    if (punctIs(T, P, "(")) {
      size_t PEnd = skipBalanced(T, P, "(", ")");
      L.ParamB = P + 1;
      L.ParamE = PEnd > P + 1 ? PEnd - 1 : P + 1;
      P = PEnd;
    }
    while (P < E && !punctIs(T, P, "{")) {
      if (punctIs(T, P, ";") || punctIs(T, P, ")") || punctIs(T, P, ","))
        return false;
      ++P; // mutable / noexcept / -> return-type
    }
    if (!punctIs(T, P, "{"))
      return false;
    size_t BodyEnd = skipBalanced(T, P, "{", "}");
    L.Begin = LB;
    L.End = BodyEnd;
    L.BodyB = P + 1;
    L.BodyE = BodyEnd > P + 1 ? BodyEnd - 1 : P + 1;
    L.Line = T[LB].Line;
    L.Col = T[LB].Col;
    return true;
  }

  /// One capture-list entry: `X` and `X = expr` copy into the closure
  /// (task-local); `&X`, `this`, and bare defaults do not bind a
  /// task-owned name.
  void capturedName(size_t B, size_t E, std::vector<std::string> &Out) const {
    if (B >= E)
      return;
    if (T[B].K != Token::Ident || T[B].Text == "this")
      return; // '&', '=', '*this', or a ref capture
    if (E > B + 1 && !punctIs(T, B + 1, "="))
      return; // not a simple or init capture
    Out.push_back(T[B].Text);
  }

  /// Runs every per-function pass over one body: the linear call/lock/
  /// flow scans (skipping extracted task lambdas), then the CFG build
  /// and dataflow summaries, then recursion into each task lambda as a
  /// synthetic IsThreadBody function.
  void finishFunction(FunctionInfo Fn, size_t ParamB, size_t ParamE,
                      size_t BodyB, size_t BodyE,
                      std::vector<std::string> ExtraLocals, int Depth) {
    std::vector<LambdaSpec> Lambdas;
    if (Depth < 4)
      findSpawnLambdas(BodyB, BodyE, Lambdas);

    std::vector<std::pair<size_t, size_t>> Skips;
    Skips.reserve(Lambdas.size());
    for (const LambdaSpec &L : Lambdas)
      Skips.push_back({L.Begin, L.End});

    std::vector<std::pair<size_t, size_t>> SavedSkips = CurSkips;
    CurSkips = Skips;
    parseBody(BodyB, BodyE, Fn);
    parseFlows(BodyB, BodyE, Fn);

    CfgBuildContext Ctx;
    Ctx.Toks = &T;
    Ctx.Lines = &Lines;
    Ctx.ClassName = Fn.Class;
    Ctx.SeedLocals = collectParamNames(T, ParamB, ParamE);
    for (std::string &L : ExtraLocals)
      Ctx.SeedLocals.push_back(std::move(L));
    Ctx.SkipRanges = Skips;
    FunctionCfg Cfg = buildFunctionCfg(BodyB, BodyE, Ctx);
    computeFlowSummaries(Cfg, Fn);
    CurSkips = std::move(SavedSkips);

    for (LambdaSpec &L : Lambdas) {
      FunctionInfo LFn;
      LFn.Name = "<lambda:" + std::to_string(L.Line) + ":" +
                 std::to_string(L.Col) + ">";
      LFn.Qual = Fn.Qual + "::" + LFn.Name;
      LFn.Class = Fn.Class;
      LFn.Line = L.Line;
      LFn.Col = L.Col;
      LFn.LineText = lineText(L.Line);
      LFn.IsThreadBody = true;
      Fn.SpawnedBodies.push_back(LFn.Qual);
      finishFunction(std::move(LFn), L.ParamB, L.ParamE, L.BodyB, L.BodyE,
                     std::move(L.ValueCaptures), Depth + 1);
    }
    Out.Functions.push_back(std::move(Fn));
  }

  //===--------------------------------------------------------------------===//
  // Body scan: calls, allocations, locks
  //===--------------------------------------------------------------------===//

  /// `A.B->C` receiver chain ending just before the '.'/'->' at \p DotPos.
  std::string receiverChain(size_t DotPos) const {
    std::string Chain;
    size_t K = DotPos;
    while (K > 0) {
      const Token &P = T[K - 1];
      if (P.K != Token::Ident)
        break;
      Chain = P.Text + Chain;
      --K;
      if (K > 0 && T[K - 1].K == Token::Punct &&
          (T[K - 1].Text == "." || T[K - 1].Text == "->" ||
           T[K - 1].Text == "::")) {
        Chain = T[K - 1].Text + Chain;
        --K;
        continue;
      }
      break;
    }
    return Chain;
  }

  /// Lock identity: single identifiers inside a method are qualified
  /// with the class name so `Mu` means the same lock across the class's
  /// methods; expressions keep their text.
  std::string lockIdFor(std::string Expr, const FunctionInfo &Fn) const {
    while (!Expr.empty() && (Expr[0] == '&' || Expr[0] == '*'))
      Expr.erase(Expr.begin());
    bool Simple = Expr.find("::") == std::string::npos &&
                  Expr.find('.') == std::string::npos &&
                  Expr.find("->") == std::string::npos;
    if (Simple && !Fn.Class.empty())
      return Fn.Class + "::" + Expr;
    return Expr;
  }

  struct HeldLock {
    std::string Name;
    int Depth = 0;      ///< Brace depth of a scoped guard.
    bool Manual = false; ///< Raw .lock(): lives until .unlock() / return.
  };

  void acquire(const std::string &Id, unsigned Line, int Depth, bool Manual,
               std::vector<HeldLock> &Held, FunctionInfo &Fn) {
    for (const HeldLock &H : Held)
      if (H.Name != Id)
        Fn.LockEdges.push_back({H.Name, Id, Line, lineText(Line)});
    Fn.Acquires.push_back({Id, Line});
    Held.push_back({Id, Depth, Manual});
  }

  /// Splits the token range [B, E) at top-level commas into joined
  /// argument texts ("Job->DoneMutex").
  std::vector<std::string> splitArgs(size_t B, size_t E) const {
    std::vector<std::string> Args;
    std::string Cur;
    int Depth = 0;
    for (size_t I = B; I < E; ++I) {
      const Token &Tok = T[I];
      if (Tok.K == Token::Punct) {
        if (Tok.Text == "(" || Tok.Text == "{" || Tok.Text == "[")
          ++Depth;
        else if (Tok.Text == ")" || Tok.Text == "}" || Tok.Text == "]")
          --Depth;
        else if (Tok.Text == "," && Depth == 0) {
          Args.push_back(Cur);
          Cur.clear();
          continue;
        }
      }
      Cur += Tok.Text;
    }
    if (!Cur.empty())
      Args.push_back(Cur);
    return Args;
  }

  void parseBody(size_t B, size_t E, FunctionInfo &Fn) {
    int Depth = 0;
    std::vector<HeldLock> Held;

    auto heldNames = [&Held] {
      std::vector<std::string> Names;
      Names.reserve(Held.size());
      for (const HeldLock &H : Held)
        Names.push_back(H.Name);
      return Names;
    };

    for (size_t I = B; I < E; ++I) {
      size_t SkipEnd = 0;
      if (skipAt(I, SkipEnd)) {
        I = SkipEnd - 1; // balanced range: depth is unaffected
        continue;
      }
      const Token &Tok = T[I];
      if (Tok.K == Token::Punct) {
        if (Tok.Text == "{") {
          ++Depth;
        } else if (Tok.Text == "}") {
          Held.erase(std::remove_if(Held.begin(), Held.end(),
                                    [Depth](const HeldLock &H) {
                                      return !H.Manual && H.Depth == Depth;
                                    }),
                     Held.end());
          --Depth;
        }
        continue;
      }
      if (Tok.K != Token::Ident)
        continue;
      const std::string &Name = Tok.Text;

      if (Name == "new") {
        Fn.Allocs.push_back(
            {"'new' expression", Tok.Line, Tok.Col, lineText(Tok.Line)});
        continue;
      }
      if (Name == "random_device" || (isClockName(Name) &&
                                      punctIs(T, I + 1, "::") &&
                                      identIs(T, I + 2, "now")))
        Fn.HasSource = true;

      bool PrevDotArrow = I > B && T[I - 1].K == Token::Punct &&
                          (T[I - 1].Text == "." || T[I - 1].Text == "->");

      // Guard construction: std::lock_guard<std::mutex> G(M);
      if (!PrevDotArrow && isGuardType(Name)) {
        size_t J = I + 1;
        if (punctIs(T, J, "<"))
          J = skipTemplateArgs(T, J);
        if (J < E && T[J].K == Token::Ident && punctIs(T, J + 1, "(")) {
          size_t ArgsEnd = skipBalanced(T, J + 1, "(", ")");
          std::vector<std::string> Args = splitArgs(J + 2, ArgsEnd - 1);
          bool Defer = false;
          for (const std::string &A : Args)
            if (A.find("defer_lock") != std::string::npos)
              Defer = true;
          if (!Defer) {
            size_t Limit = Name == "scoped_lock" ? Args.size()
                                                 : std::min<size_t>(1, Args.size());
            for (size_t A = 0; A < Limit; ++A) {
              if (Args[A].find("adopt_lock") != std::string::npos ||
                  Args[A].find("try_to_lock") != std::string::npos)
                continue;
              acquire(lockIdFor(Args[A], Fn), Tok.Line, Depth, false, Held,
                      Fn);
            }
          }
          I = ArgsEnd - 1;
          continue;
        }
        continue;
      }

      if (PrevDotArrow && punctIs(T, I + 1, "(")) {
        if (Name == "lock" && punctIs(T, I + 2, ")")) {
          acquire(lockIdFor(receiverChain(I - 1), Fn), Tok.Line, Depth, true,
                  Held, Fn);
          I += 2;
          continue;
        }
        if (Name == "unlock" && punctIs(T, I + 2, ")")) {
          std::string Id = lockIdFor(receiverChain(I - 1), Fn);
          auto It = std::find_if(
              Held.begin(), Held.end(),
              [&Id](const HeldLock &H) { return H.Manual && H.Name == Id; });
          if (It != Held.end())
            Held.erase(It);
          I += 2;
          continue;
        }
        if (isGrowthMember(Name))
          Fn.Allocs.push_back({"container growth '" + Name + "'", Tok.Line,
                               Tok.Col, lineText(Tok.Line)});
        CallSite CS;
        CS.Name = Name;
        CS.IsMember = true;
        CS.Line = Tok.Line;
        CS.Col = Tok.Col;
        CS.HeldLocks = heldNames();
        if (!CS.HeldLocks.empty())
          CS.LineText = lineText(Tok.Line);
        Fn.Calls.push_back(std::move(CS));
        continue;
      }

      if (punctIs(T, I + 1, "(")) {
        if (isControlKw(Name) || Name == "operator")
          continue;
        std::string Qualifier;
        size_t Back = I;
        while (Back >= 2 && punctIs(T, Back - 1, "::") &&
               T[Back - 2].K == Token::Ident) {
          Qualifier = T[Back - 2].Text +
                      (Qualifier.empty() ? "" : "::" + Qualifier);
          Back -= 2;
        }
        if (Qualifier.empty() && Back > B) {
          const Token &Prev = T[Back - 1];
          if (Prev.K == Token::Ident && !precedesCall(Prev.Text))
            continue; // `Vec add(` — a declaration, not a call
          if (Prev.K == Token::Number || Prev.K == Token::String)
            continue;
        }
        if (isEntropyCallName(Name) &&
            (Qualifier.empty() || Qualifier == "std"))
          Fn.HasSource = true;
        if (isAllocCall(Name) && (Qualifier.empty() || Qualifier == "std"))
          Fn.Allocs.push_back({"heap allocation '" + Name + "'", Tok.Line,
                               Tok.Col, lineText(Tok.Line)});
        else if (isLinalgValueCall(Name) &&
                 (Qualifier.empty() || Qualifier.rfind("medley", 0) == 0))
          Fn.Allocs.push_back({"value-returning linalg '" + Name + "'",
                               Tok.Line, Tok.Col, lineText(Tok.Line)});
        CallSite CS;
        CS.Name = Name;
        CS.Qualifier = Qualifier;
        CS.Line = Tok.Line;
        CS.Col = Tok.Col;
        CS.HeldLocks = heldNames();
        if (!CS.HeldLocks.empty())
          CS.LineText = lineText(Tok.Line);
        Fn.Calls.push_back(std::move(CS));
        continue;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Statement pass: taint flows & sinks
  //===--------------------------------------------------------------------===//

  struct RhsInfo {
    std::vector<std::string> Vars;
    std::vector<std::string> Calls;
    bool HasSource = false;
  };

  RhsInfo scanRhs(size_t B, size_t E) const {
    RhsInfo Info;
    for (size_t I = B; I < E; ++I) {
      size_t SkipEnd = 0;
      if (skipAt(I, SkipEnd)) {
        I = SkipEnd - 1;
        continue;
      }
      const Token &Tok = T[I];
      if (Tok.K != Token::Ident)
        continue;
      const std::string &Name = Tok.Text;
      bool Member = I > B && T[I - 1].K == Token::Punct &&
                    (T[I - 1].Text == "." || T[I - 1].Text == "->");
      if (Name == "random_device" && !Member) {
        Info.HasSource = true;
        continue;
      }
      if (isClockName(Name) && punctIs(T, I + 1, "::") &&
          identIs(T, I + 2, "now")) {
        Info.HasSource = true;
        I += 2;
        continue;
      }
      if (punctIs(T, I + 1, "(")) {
        if (isControlKw(Name))
          continue;
        if (!Member && isEntropyCallName(Name)) {
          Info.HasSource = true;
          continue;
        }
        Info.Calls.push_back(Name);
        continue;
      }
      if (Member || punctIs(T, I + 1, "::"))
        continue; // field access or namespace qualifier
      if (Name == "true" || Name == "false" || Name == "nullptr" ||
          Name == "const" || Name == "auto" || isControlKw(Name))
        continue;
      Info.Vars.push_back(Name);
    }
    std::sort(Info.Vars.begin(), Info.Vars.end());
    Info.Vars.erase(std::unique(Info.Vars.begin(), Info.Vars.end()),
                    Info.Vars.end());
    std::sort(Info.Calls.begin(), Info.Calls.end());
    Info.Calls.erase(std::unique(Info.Calls.begin(), Info.Calls.end()),
                     Info.Calls.end());
    return Info;
  }

  void processStatement(size_t B, size_t E, FunctionInfo &Fn) {
    if (B >= E)
      return;

    if (identIs(T, B, "return")) {
      RhsInfo Info = scanRhs(B + 1, E);
      if (Info.HasSource || !Info.Vars.empty() || !Info.Calls.empty()) {
        Fn.Flows.push_back({"<return>", Info.Vars, Info.Calls, Info.HasSource,
                            T[B].Line});
        Fn.HasSource |= Info.HasSource;
      }
    } else {
      // First top-level assignment operator.
      static const std::array<const char *, 11> Assign = {
          "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
      int Depth = 0;
      size_t OpPos = E;
      for (size_t I = B; I < E; ++I) {
        if (T[I].K != Token::Punct)
          continue;
        const std::string &P = T[I].Text;
        if (P == "(" || P == "[" || P == "{")
          ++Depth;
        else if (P == ")" || P == "]" || P == "}")
          --Depth;
        else if (Depth == 0 && oneOf(P, Assign)) {
          OpPos = I;
          break;
        }
      }
      if (OpPos != E && OpPos > B) {
        // Chain base of the lhs: A.B[i] = ... taints A... no: taints the
        // written object; use the identifier nearest the operator, walked
        // back over subscripts and member accesses to the chain base.
        size_t K = OpPos;
        std::string Lhs;
        while (K > B) {
          const Token &P = T[K - 1];
          if (P.K == Token::Punct && P.Text == "]") {
            // skip backward over the subscript
            int D = 0;
            --K;
            while (K > B) {
              if (punctIs(T, K - 1, "]"))
                ++D;
              else if (punctIs(T, K - 1, "[")) {
                if (D == 0) {
                  --K;
                  break;
                }
                --D;
              }
              --K;
            }
            continue;
          }
          if (P.K == Token::Ident) {
            Lhs = P.Text;
            --K;
            if (K > B && T[K - 1].K == Token::Punct &&
                (T[K - 1].Text == "." || T[K - 1].Text == "->")) {
              --K;
              continue; // keep walking to the chain base
            }
            break;
          }
          break;
        }
        if (!Lhs.empty()) {
          RhsInfo Info = scanRhs(OpPos + 1, E);
          if (Info.HasSource || !Info.Vars.empty() || !Info.Calls.empty()) {
            Fn.Flows.push_back(
                {Lhs, Info.Vars, Info.Calls, Info.HasSource, T[OpPos].Line});
            Fn.HasSource |= Info.HasSource;
          }
        }
      }
    }

    // Seed-style sinks anywhere in the statement.
    for (size_t I = B; I < E; ++I) {
      size_t SkipEnd = 0;
      if (skipAt(I, SkipEnd)) {
        I = SkipEnd - 1;
        continue;
      }
      if (T[I].K != Token::Ident || !isSeedSink(T[I].Text))
        continue;
      size_t ArgsOpen = 0;
      if (punctIs(T, I + 1, "("))
        ArgsOpen = I + 1; // seed(x) / srand(x) / Rng(x) temporary
      else if (I + 2 < E && T[I + 1].K == Token::Ident &&
               punctIs(T, I + 2, "("))
        ArgsOpen = I + 2; // Rng R(x); — constructor with declarator
      if (!ArgsOpen)
        continue;
      size_t ArgsEnd = skipBalanced(T, ArgsOpen, "(", ")");
      if (ArgsEnd <= ArgsOpen + 2)
        continue; // no arguments — nothing can flow in
      RhsInfo Info = scanRhs(ArgsOpen + 1, ArgsEnd - 1);
      Fn.Sinks.push_back({T[I].Text, Info.Vars, Info.Calls, Info.HasSource,
                          T[I].Line, T[I].Col, lineText(T[I].Line)});
    }

    // Stream/trace output: `Stream << expr << ...` at statement level.
    if (T[B].K == Token::Ident && !isControlKw(T[B].Text)) {
      int Depth = 0;
      for (size_t I = B; I < E; ++I) {
        size_t SkipEnd = 0;
        if (skipAt(I, SkipEnd)) {
          I = SkipEnd - 1;
          continue;
        }
        if (T[I].K != Token::Punct)
          continue;
        const std::string &P = T[I].Text;
        if (P == "(" || P == "[" || P == "{")
          ++Depth;
        else if (P == ")" || P == "]" || P == "}")
          --Depth;
        else if (P == "<<" && Depth == 0) {
          RhsInfo Info = scanRhs(I + 1, E);
          Fn.Sinks.push_back({"stream output", Info.Vars, Info.Calls,
                              Info.HasSource, T[I].Line, T[I].Col,
                              lineText(T[I].Line)});
          break; // one sink per statement is enough
        }
      }
    }
  }

  void parseFlows(size_t B, size_t E, FunctionInfo &Fn) {
    int PDepth = 0;
    size_t S = B;
    for (size_t I = B; I < E; ++I) {
      size_t SkipEnd = 0;
      if (skipAt(I, SkipEnd)) {
        I = SkipEnd - 1; // balanced range: paren depth is unaffected
        continue;
      }
      if (T[I].K != Token::Punct)
        continue;
      const std::string &P = T[I].Text;
      if (P == "(" || P == "[")
        ++PDepth;
      else if (P == ")" || P == "]")
        --PDepth;
      else if (PDepth == 0 && (P == ";" || P == "{" || P == "}")) {
        processStatement(S, I, Fn);
        S = I + 1;
      }
    }
    processStatement(S, E, Fn);
  }
};

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string escField(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string unescField(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\' || I + 1 >= S.size()) {
      Out += S[I];
      continue;
    }
    ++I;
    switch (S[I]) {
    case 't':
      Out += '\t';
      break;
    case 'n':
      Out += '\n';
      break;
    default:
      Out += S[I];
    }
  }
  return Out;
}

std::string joinList(const std::vector<std::string> &L) {
  std::string Out;
  for (size_t I = 0; I < L.size(); ++I)
    Out += (I ? "," : "") + L[I];
  return Out;
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

void emitLine(std::ostringstream &OS, const std::vector<std::string> &Fields) {
  for (size_t I = 0; I < Fields.size(); ++I)
    OS << (I ? "\t" : "") << escField(Fields[I]);
  OS << "\n";
}

/// Reads one line from \p Data at \p Pos into tab-separated fields.
bool readLine(const std::string &Data, size_t &Pos,
              std::vector<std::string> &Fields) {
  if (Pos >= Data.size())
    return false;
  size_t End = Data.find('\n', Pos);
  if (End == std::string::npos)
    End = Data.size();
  Fields.clear();
  std::string Field;
  for (size_t I = Pos; I < End; ++I) {
    if (Data[I] == '\t') {
      Fields.push_back(unescField(Field));
      Field.clear();
    } else {
      Field += Data[I];
    }
  }
  Fields.push_back(unescField(Field));
  Pos = End + 1;
  return true;
}

bool toUnsigned(const std::string &S, unsigned &Out) {
  if (S.empty())
    return false;
  unsigned long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
    if (V > 0xffffffffUL)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

std::string medley::lint::escapeTsvField(const std::string &S) {
  return escField(S);
}

void medley::lint::appendTsvLine(std::string &Out,
                                 const std::vector<std::string> &Fields) {
  std::ostringstream OS;
  emitLine(OS, Fields);
  Out += OS.str();
}

bool medley::lint::readTsvLine(const std::string &Data, size_t &Pos,
                               std::vector<std::string> &Fields) {
  return readLine(Data, Pos, Fields);
}

bool medley::lint::parseUnsignedField(const std::string &S, unsigned &Out) {
  return toUnsigned(S, Out);
}

FileIndex medley::lint::buildFileIndex(const std::string &Path,
                                       const std::string &Source,
                                       FileKind Kind) {
  FileIndex Out;
  Out.Path = Path;
  Out.Kind = Kind;
  LexedFile Lexed = lex(Source);
  Out.AllowLines = expandAllowCoverage(Lexed);

  std::vector<std::string> Lines;
  {
    std::string Line;
    for (char C : Source) {
      if (C == '\n') {
        Lines.push_back(Line);
        Line.clear();
      } else {
        Line += C;
      }
    }
    Lines.push_back(Line);
  }

  Indexer Ix(Lexed.Tokens, Lines, Out);
  Ix.run();
  return Out;
}

FileIndex medley::lint::buildFileIndex(const std::string &Path,
                                       const std::string &Source) {
  return buildFileIndex(Path, Source, classifyPath(Path));
}

std::string medley::lint::serializeFileIndex(const FileIndex &Index) {
  std::ostringstream OS;
  emitLine(OS, {"I", Index.Path, std::to_string(static_cast<int>(Index.Kind)),
                std::to_string(Index.Functions.size()),
                std::to_string(Index.AllowLines.size()),
                std::to_string(Index.Fields.size())});
  for (const auto &[Line, Rules] : Index.AllowLines)
    emitLine(OS, {"w", std::to_string(Line),
                  joinList({Rules.begin(), Rules.end()})});
  for (const FieldDecl &FD : Index.Fields)
    emitLine(OS, {"D", FD.Class, FD.Name, FD.Atomic ? "1" : "0",
                  FD.Mutex ? "1" : "0"});
  for (const FunctionInfo &Fn : Index.Functions) {
    emitLine(OS, {"N", Fn.Qual, Fn.Name, Fn.Class, std::to_string(Fn.Line),
                  std::to_string(Fn.Col), Fn.HasSource ? "1" : "0",
                  Fn.LineText, std::to_string(Fn.Calls.size()),
                  std::to_string(Fn.Allocs.size()),
                  std::to_string(Fn.Acquires.size()),
                  std::to_string(Fn.LockEdges.size()),
                  std::to_string(Fn.Flows.size()),
                  std::to_string(Fn.Sinks.size()),
                  Fn.IsThreadBody ? "1" : "0",
                  std::to_string(Fn.SpawnedBodies.size()),
                  std::to_string(Fn.Writes.size()),
                  std::to_string(Fn.Retentions.size()),
                  std::to_string(Fn.FlowCalls.size()),
                  std::to_string(Fn.ResetArenas.size())});
    for (const CallSite &C : Fn.Calls)
      emitLine(OS, {"c", C.Name, C.Qualifier, C.IsMember ? "1" : "0",
                    std::to_string(C.Line), std::to_string(C.Col),
                    joinList(C.HeldLocks), C.LineText});
    for (const AllocSite &A : Fn.Allocs)
      emitLine(OS, {"a", A.What, std::to_string(A.Line),
                    std::to_string(A.Col), A.LineText});
    for (const LockAcq &Q : Fn.Acquires)
      emitLine(OS, {"q", Q.Name, std::to_string(Q.Line)});
    for (const LockEdge &LE : Fn.LockEdges)
      emitLine(OS, {"e", LE.First, LE.Second, std::to_string(LE.Line),
                    LE.LineText});
    for (const TaintFlow &F : Fn.Flows)
      emitLine(OS, {"f", F.Lhs, joinList(F.RhsVars), joinList(F.RhsCalls),
                    F.HasSource ? "1" : "0", std::to_string(F.Line)});
    for (const SinkUse &S : Fn.Sinks)
      emitLine(OS, {"s", S.Sink, joinList(S.ArgVars), joinList(S.ArgCalls),
                    S.HasSource ? "1" : "0", std::to_string(S.Line),
                    std::to_string(S.Col), S.LineText});
    for (const std::string &SB : Fn.SpawnedBodies)
      emitLine(OS, {"b", SB});
    for (const UnguardedWrite &W : Fn.Writes)
      emitLine(OS, {"W", W.Lhs, W.Base, W.Last, std::to_string(W.Line),
                    std::to_string(W.Col), W.LineText});
    for (const RetentionSite &R : Fn.Retentions)
      emitLine(OS, {"R", std::to_string(R.K), R.Var, R.Origin, R.Base,
                    R.Last, R.Callee, R.CalleeQual,
                    R.CalleeMember ? "1" : "0", std::to_string(R.Line),
                    std::to_string(R.Col), R.LineText});
    for (const FlowCall &FC : Fn.FlowCalls)
      emitLine(OS, {"o", FC.Name, FC.Qualifier, FC.IsMember ? "1" : "0",
                    FC.LocalRecv ? "1" : "0", FC.LockFree ? "1" : "0",
                    std::to_string(FC.Line), std::to_string(FC.Col)});
    for (const std::string &Z : Fn.ResetArenas)
      emitLine(OS, {"Z", Z});
  }
  return OS.str();
}

bool medley::lint::deserializeFileIndex(const std::string &Data, size_t &Pos,
                                        FileIndex &Out) {
  std::vector<std::string> F;
  if (!readLine(Data, Pos, F) || F.size() != 6 || F[0] != "I")
    return false;
  Out = FileIndex();
  Out.Path = F[1];
  unsigned Kind = 0, NumFns = 0, NumAllow = 0, NumFields = 0;
  if (!toUnsigned(F[2], Kind) || Kind > static_cast<unsigned>(FileKind::Other))
    return false;
  Out.Kind = static_cast<FileKind>(Kind);
  if (!toUnsigned(F[3], NumFns) || !toUnsigned(F[4], NumAllow) ||
      !toUnsigned(F[5], NumFields))
    return false;
  for (unsigned I = 0; I < NumAllow; ++I) {
    unsigned Line = 0;
    if (!readLine(Data, Pos, F) || F.size() != 3 || F[0] != "w" ||
        !toUnsigned(F[1], Line))
      return false;
    std::vector<std::string> Rules = splitList(F[2]);
    Out.AllowLines[Line] = {Rules.begin(), Rules.end()};
  }
  for (unsigned I = 0; I < NumFields; ++I) {
    if (!readLine(Data, Pos, F) || F.size() != 5 || F[0] != "D")
      return false;
    FieldDecl FD;
    FD.Class = F[1];
    FD.Name = F[2];
    FD.Atomic = F[3] == "1";
    FD.Mutex = F[4] == "1";
    Out.Fields.push_back(std::move(FD));
  }
  for (unsigned I = 0; I < NumFns; ++I) {
    if (!readLine(Data, Pos, F) || F.size() != 20 || F[0] != "N")
      return false;
    FunctionInfo Fn;
    Fn.Qual = F[1];
    Fn.Name = F[2];
    Fn.Class = F[3];
    unsigned NC = 0, NA = 0, NQ = 0, NE = 0, NF = 0, NS = 0;
    unsigned NB = 0, NW = 0, NR = 0, NO = 0, NZ = 0;
    if (!toUnsigned(F[4], Fn.Line) || !toUnsigned(F[5], Fn.Col) ||
        !toUnsigned(F[8], NC) || !toUnsigned(F[9], NA) ||
        !toUnsigned(F[10], NQ) || !toUnsigned(F[11], NE) ||
        !toUnsigned(F[12], NF) || !toUnsigned(F[13], NS) ||
        !toUnsigned(F[15], NB) || !toUnsigned(F[16], NW) ||
        !toUnsigned(F[17], NR) || !toUnsigned(F[18], NO) ||
        !toUnsigned(F[19], NZ))
      return false;
    Fn.HasSource = F[6] == "1";
    Fn.LineText = F[7];
    Fn.IsThreadBody = F[14] == "1";
    for (unsigned J = 0; J < NC; ++J) {
      CallSite C;
      if (!readLine(Data, Pos, F) || F.size() != 8 || F[0] != "c" ||
          !toUnsigned(F[4], C.Line) || !toUnsigned(F[5], C.Col))
        return false;
      C.Name = F[1];
      C.Qualifier = F[2];
      C.IsMember = F[3] == "1";
      C.HeldLocks = splitList(F[6]);
      C.LineText = F[7];
      Fn.Calls.push_back(std::move(C));
    }
    for (unsigned J = 0; J < NA; ++J) {
      AllocSite A;
      if (!readLine(Data, Pos, F) || F.size() != 5 || F[0] != "a" ||
          !toUnsigned(F[2], A.Line) || !toUnsigned(F[3], A.Col))
        return false;
      A.What = F[1];
      A.LineText = F[4];
      Fn.Allocs.push_back(std::move(A));
    }
    for (unsigned J = 0; J < NQ; ++J) {
      LockAcq Q;
      if (!readLine(Data, Pos, F) || F.size() != 3 || F[0] != "q" ||
          !toUnsigned(F[2], Q.Line))
        return false;
      Q.Name = F[1];
      Fn.Acquires.push_back(std::move(Q));
    }
    for (unsigned J = 0; J < NE; ++J) {
      LockEdge LE;
      if (!readLine(Data, Pos, F) || F.size() != 5 || F[0] != "e" ||
          !toUnsigned(F[3], LE.Line))
        return false;
      LE.First = F[1];
      LE.Second = F[2];
      LE.LineText = F[4];
      Fn.LockEdges.push_back(std::move(LE));
    }
    for (unsigned J = 0; J < NF; ++J) {
      TaintFlow TF;
      if (!readLine(Data, Pos, F) || F.size() != 6 || F[0] != "f" ||
          !toUnsigned(F[5], TF.Line))
        return false;
      TF.Lhs = F[1];
      TF.RhsVars = splitList(F[2]);
      TF.RhsCalls = splitList(F[3]);
      TF.HasSource = F[4] == "1";
      Fn.Flows.push_back(std::move(TF));
    }
    for (unsigned J = 0; J < NS; ++J) {
      SinkUse S;
      if (!readLine(Data, Pos, F) || F.size() != 8 || F[0] != "s" ||
          !toUnsigned(F[5], S.Line) || !toUnsigned(F[6], S.Col))
        return false;
      S.Sink = F[1];
      S.ArgVars = splitList(F[2]);
      S.ArgCalls = splitList(F[3]);
      S.HasSource = F[4] == "1";
      S.LineText = F[7];
      Fn.Sinks.push_back(std::move(S));
    }
    for (unsigned J = 0; J < NB; ++J) {
      if (!readLine(Data, Pos, F) || F.size() != 2 || F[0] != "b")
        return false;
      Fn.SpawnedBodies.push_back(F[1]);
    }
    for (unsigned J = 0; J < NW; ++J) {
      UnguardedWrite W;
      if (!readLine(Data, Pos, F) || F.size() != 7 || F[0] != "W" ||
          !toUnsigned(F[4], W.Line) || !toUnsigned(F[5], W.Col))
        return false;
      W.Lhs = F[1];
      W.Base = F[2];
      W.Last = F[3];
      W.LineText = F[6];
      Fn.Writes.push_back(std::move(W));
    }
    for (unsigned J = 0; J < NR; ++J) {
      RetentionSite R;
      unsigned K = 0;
      if (!readLine(Data, Pos, F) || F.size() != 12 || F[0] != "R" ||
          !toUnsigned(F[1], K) || K > RetentionSite::AcrossCall ||
          !toUnsigned(F[9], R.Line) || !toUnsigned(F[10], R.Col))
        return false;
      R.K = static_cast<int>(K);
      R.Var = F[2];
      R.Origin = F[3];
      R.Base = F[4];
      R.Last = F[5];
      R.Callee = F[6];
      R.CalleeQual = F[7];
      R.CalleeMember = F[8] == "1";
      R.LineText = F[11];
      Fn.Retentions.push_back(std::move(R));
    }
    for (unsigned J = 0; J < NO; ++J) {
      FlowCall FC;
      if (!readLine(Data, Pos, F) || F.size() != 8 || F[0] != "o" ||
          !toUnsigned(F[6], FC.Line) || !toUnsigned(F[7], FC.Col))
        return false;
      FC.Name = F[1];
      FC.Qualifier = F[2];
      FC.IsMember = F[3] == "1";
      FC.LocalRecv = F[4] == "1";
      FC.LockFree = F[5] == "1";
      Fn.FlowCalls.push_back(std::move(FC));
    }
    for (unsigned J = 0; J < NZ; ++J) {
      if (!readLine(Data, Pos, F) || F.size() != 2 || F[0] != "Z")
        return false;
      Fn.ResetArenas.push_back(F[1]);
    }
    Out.Functions.push_back(std::move(Fn));
  }
  return true;
}
