//===-- fixtures/hotpath-escape/src/Gather.cpp - Seeded known-bad tree ----===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// The escape itself: vector growth two calls below the decision entry
// point. The L7 finding must anchor at the push_back line below and
// carry the full entry path in its message.
//
//===----------------------------------------------------------------------===//

#include <vector>

std::vector<int> gatherCandidates(int Budget) {
  std::vector<int> Out;
  for (int I = 0; I < Budget; ++I)
    Out.push_back(I);
  return Out;
}
