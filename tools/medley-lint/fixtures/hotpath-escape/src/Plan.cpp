//===-- fixtures/hotpath-escape/src/Plan.cpp - Seeded known-bad tree ------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// The middle hop: planRoute itself is allocation-free (resize is the
// sanctioned sticky-scratch idiom), so a per-file check sees nothing.
// Only the linked call graph connects choose -> planRoute ->
// gatherCandidates to the escape.
//
//===----------------------------------------------------------------------===//

#include <vector>

std::vector<int> gatherCandidates(int Budget);

std::vector<int> planRoute(int Budget) {
  std::vector<int> Candidates = gatherCandidates(Budget);
  if (Candidates.size() > 4)
    Candidates.resize(4);
  return Candidates;
}
