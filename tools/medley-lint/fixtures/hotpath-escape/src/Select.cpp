//===-- fixtures/hotpath-escape/src/Select.cpp - Seeded known-bad tree ----===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the hotpath-escape rule (L7): RouteSelector::choose
// is a decision entry point, and the allocation it reaches hides two
// calls below it, in a different translation unit (Gather.cpp). This
// file must never be compiled or linted as part of the product tree.
//
//===----------------------------------------------------------------------===//

#include <vector>

std::vector<int> planRoute(int Budget);

class RouteSelector {
public:
  int choose(int Budget);
};

int RouteSelector::choose(int Budget) {
  std::vector<int> Plan = planRoute(Budget);
  return Plan.empty() ? -1 : Plan.front();
}
