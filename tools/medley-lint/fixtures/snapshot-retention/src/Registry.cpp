//===-- fixtures/snapshot-retention/src/Registry.cpp - Minimal registry ---===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// A minimal ExpertRegistry/ExpertSnapshot pair for the
// snapshot-retention fixture tree: the rule arms itself only when a
// node `ExpertRegistry::acquire` exists in the linked graph, which this
// file provides. Its own body is a pass case — the pin bookkeeping
// stores through a *parameter*, not a field. This file must never be
// compiled or linted as part of the product tree.
//
//===----------------------------------------------------------------------===//

struct ExpertSnapshot {
  unsigned long Version = 0;
};

struct ReaderPin {
  const ExpertSnapshot *Held = nullptr;
};

class ExpertRegistry {
public:
  const ExpertSnapshot *acquire(ReaderPin &Reader);
  void maintain();

private:
  ExpertSnapshot Current;
};

const ExpertSnapshot *ExpertRegistry::acquire(ReaderPin &Reader) {
  Reader.Held = &Current; // ok: the pin is the caller's, not a field
  return Reader.Held;
}

void ExpertRegistry::maintain() {}
