//===-- fixtures/snapshot-retention/src/Holder.cpp - Store/return cases ---===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the snapshot-retention rule (L11), storage legs:
//
//   - stash():  acquired pointer stored into a member field  -> flag
//   - publish(): acquired pointer stored into a global       -> flag
//   - pin():    acquired pointer returned to the caller      -> flag
//   - peek():   value copied out while the pin is live       -> pass
//
// This file must never be compiled or linted as part of the product
// tree.
//
//===----------------------------------------------------------------------===//

struct ExpertSnapshot {
  unsigned long Version = 0;
};

struct ReaderPin {
  const ExpertSnapshot *Held = nullptr;
};

class ExpertRegistry {
public:
  const ExpertSnapshot *acquire(ReaderPin &Reader);
  void maintain();
};

const ExpertSnapshot *GLastSnapshot = nullptr;

class SnapshotHolder {
public:
  void stash(ExpertRegistry &Reg);
  void publish(ExpertRegistry &Reg);
  const ExpertSnapshot *pin(ExpertRegistry &Reg);
  unsigned long peek(ExpertRegistry &Reg);

private:
  const ExpertSnapshot *Cached = nullptr;
};

void SnapshotHolder::stash(ExpertRegistry &Reg) {
  ReaderPin Pin;
  const ExpertSnapshot *S = Reg.acquire(Pin);
  Cached = S; // <- snapshot-retention: cached in a field
}

void SnapshotHolder::publish(ExpertRegistry &Reg) {
  ReaderPin Pin;
  const ExpertSnapshot *S = Reg.acquire(Pin);
  GLastSnapshot = S; // <- snapshot-retention: cached in a global
}

const ExpertSnapshot *SnapshotHolder::pin(ExpertRegistry &Reg) {
  ReaderPin Pin;
  return Reg.acquire(Pin); // <- snapshot-retention: returned
}

unsigned long SnapshotHolder::peek(ExpertRegistry &Reg) {
  ReaderPin Pin;
  const ExpertSnapshot *S = Reg.acquire(Pin);
  if (!S)
    return 0;
  return S->Version; // ok: a copied value, not the pointer
}
