//===-- fixtures/snapshot-retention/src/Maintain.cpp - Held-across cases --===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the snapshot-retention rule (L11), epoch-stretch
// legs — a snapshot still live across a call that parks the thread or
// runs the reclaimer delays retirement of every retired generation:
//
//   - acrossMaintain(): live across Reg.maintain()            -> flag
//   - directWait():     live across this_thread::sleep_for    -> flag
//   - viaHelper():      live across helper(), which sleeps
//                       (transitive may-block)                 -> flag
//   - scoped():         snapshot dead before the sleep        -> pass
//
// This file must never be compiled or linted as part of the product
// tree.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <thread>

struct ExpertSnapshot {
  unsigned long Version = 0;
};

struct ReaderPin {
  const ExpertSnapshot *Held = nullptr;
};

class ExpertRegistry {
public:
  const ExpertSnapshot *acquire(ReaderPin &Reader);
  void maintain();
};

unsigned long GVersionSink = 0;

class EpochWorker {
public:
  void acrossMaintain(ExpertRegistry &Reg);
  void directWait(ExpertRegistry &Reg);
  void viaHelper(ExpertRegistry &Reg);
  void scoped(ExpertRegistry &Reg);
  void helper();
};

void EpochWorker::acrossMaintain(ExpertRegistry &Reg) {
  ReaderPin Pin;
  const ExpertSnapshot *S = Reg.acquire(Pin);
  Reg.maintain(); // <- snapshot-retention: S held across the reclaimer
  GVersionSink = S->Version;
}

void EpochWorker::directWait(ExpertRegistry &Reg) {
  ReaderPin Pin;
  const ExpertSnapshot *S = Reg.acquire(Pin);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(1)); // <- snapshot-retention: held across
  GVersionSink = S->Version;
}

void EpochWorker::helper() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void EpochWorker::viaHelper(ExpertRegistry &Reg) {
  ReaderPin Pin;
  const ExpertSnapshot *S = Reg.acquire(Pin);
  helper(); // <- snapshot-retention: helper() transitively blocks
  GVersionSink = S->Version;
}

void EpochWorker::scoped(ExpertRegistry &Reg) {
  ReaderPin Pin;
  const ExpertSnapshot *S = Reg.acquire(Pin);
  GVersionSink = S->Version; // done with the snapshot before the wait
  std::this_thread::sleep_for(std::chrono::milliseconds(1)); // ok: S dead
}
