//===-- fixtures/lock-order/src/Stats.cpp - Seeded known-bad tree ---------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// The reversed half of the cycle lives in its own translation unit:
// refreshStats takes MuA, and Pipeline::drain (Pipeline.cpp) calls it
// while already holding MuB.
//
//===----------------------------------------------------------------------===//

#include <mutex>

void Pipeline::refreshStats() {
  std::lock_guard<std::mutex> Guard(MuA);
}
