//===-- fixtures/lock-order/src/Pipeline.cpp - Seeded known-bad tree ------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the lock-order rule (L8). publish() establishes the
// order MuA -> MuB; drain() holds MuB while calling refreshStats()
// (defined in Stats.cpp), which acquires MuA — an interprocedural
// reversal, so the cycle only appears in the linked graph. waitForFlush()
// additionally holds a lock across a blocking sleep.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <mutex>
#include <thread>

class Pipeline {
public:
  void publish();
  void drain();
  void refreshStats();
  void waitForFlush();

private:
  std::mutex MuA;
  std::mutex MuB;
  int Stats = 0;
};

void Pipeline::publish() {
  std::lock_guard<std::mutex> GuardA(MuA);
  std::lock_guard<std::mutex> GuardB(MuB);
  ++Stats;
}

void Pipeline::drain() {
  std::lock_guard<std::mutex> GuardB(MuB);
  refreshStats();
}

void Pipeline::waitForFlush() {
  std::lock_guard<std::mutex> GuardA(MuA);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}
