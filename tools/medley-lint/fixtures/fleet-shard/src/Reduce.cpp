//===-- fixtures/fleet-shard/src/Reduce.cpp - Cross-TU leg ----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// The out-of-line definition of FleetEngine::recordDecisions for the
// fleet-shard fixture: stepShard (a named thread-task root) calls
// recordDecisions(), so the unguarded `TotalDecisions += N` here must be
// flagged even though the root lives in a different translation unit.
// The locked variant below it must not. This file must never be compiled
// or linted as part of the product tree.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <mutex>
#include <vector>

class FleetEngine {
public:
  void stepShard(unsigned long Shard, unsigned long Ticks);
  void recordDecisions(unsigned long N);
  void recordDecisionsLocked(unsigned long N);

private:
  long TotalTicks = 0;
  long TotalDecisions = 0;
  long GuardedTotal = 0;
  std::atomic<long> Alive{0};
  std::vector<long> TickLog;
  std::mutex Mu;
};

void FleetEngine::recordDecisions(unsigned long N) {
  TotalDecisions += static_cast<long>(N); // <- cross-thread-write
}

void FleetEngine::recordDecisionsLocked(unsigned long N) {
  std::lock_guard<std::mutex> G(Mu);
  TotalDecisions += static_cast<long>(N); // ok: Mu held for the whole body
}
