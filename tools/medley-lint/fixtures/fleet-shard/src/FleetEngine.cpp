//===-- fixtures/fleet-shard/src/FleetEngine.cpp - Seeded bad tree --------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the fleet-engine lint coverage (L7 + L10). The
// class name and method names deliberately mirror the real
// sim::FleetEngine so the analyzer's named entry/root lists bind to
// them:
//
//   - `TotalTicks += Ticks` in stepShard: a shared non-atomic aggregate
//     written by every shard's worker with no lock held — the exact bug
//     the share-nothing design exists to rule out (L10, via the named
//     FleetEngine::stepShard thread-task root; no spawn lambda is even
//     present in this tree);
//   - `TotalDecisions += N` in Reduce.cpp, reached through the
//     recordDecisions() call (cross-translation-unit leg, L10);
//   - the std::vector push_back in stepShard: a heap allocation on the
//     steady tick path (L7, via the FleetEngine::stepShard decision
//     entry).
//
// The atomic counter, the mutex-guarded total, and the per-shard local
// state are pass cases and must stay quiet. This file must never be
// compiled or linted as part of the product tree.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <mutex>
#include <vector>

class FleetEngine {
public:
  void stepShard(unsigned long Shard, unsigned long Ticks);
  void recordDecisions(unsigned long N); // out-of-line in Reduce.cpp

private:
  long TotalTicks = 0;           // seeded race: shared per-shard aggregate
  long TotalDecisions = 0;       // seeded race: written by recordDecisions()
  long GuardedTotal = 0;         // pass: only written under Mu
  std::atomic<long> Alive{0};    // pass: atomic destination
  std::vector<long> TickLog;     // seeded escape: grown on the tick path
  std::mutex Mu;
};

void FleetEngine::stepShard(unsigned long Shard, unsigned long Ticks) {
  long LocalTicks = 0; // pass: task-local accumulator
  for (unsigned long T = 0; T < Ticks; ++T)
    LocalTicks += 1;
  TotalTicks += LocalTicks;            // <- cross-thread-write
  Alive = static_cast<long>(Shard);    // ok: atomic
  {
    std::lock_guard<std::mutex> G(Mu);
    GuardedTotal += LocalTicks;        // ok: Mu held
  }
  TickLog.push_back(LocalTicks);       // <- hotpath-escape
  recordDecisions(Ticks);
}
