//===-- fixtures/determinism-taint/src/Seed.cpp - Seeded known-bad tree ---===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Taint laundering: deriveSeed forwards pickEntropy's tainted return
// through its own local and return value, and configureGenerator feeds
// it to an RNG seed — the sink. Only the interprocedural fixed point
// connects the rand() in Entropy.cpp to the mt19937 construction here.
//
//===----------------------------------------------------------------------===//

#include <random>

unsigned pickEntropy();

unsigned deriveSeed() {
  unsigned Seed = pickEntropy();
  return Seed;
}

void configureGenerator() {
  std::mt19937 Gen(deriveSeed());
  (void)Gen;
}
