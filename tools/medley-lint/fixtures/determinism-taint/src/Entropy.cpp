//===-- fixtures/determinism-taint/src/Entropy.cpp - Seeded known-bad tree ===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the determinism-taint rule (L9): rand() flows into
// a local, then out through the return value. The sink is two functions
// away, in Seed.cpp.
//
//===----------------------------------------------------------------------===//

#include <cstdlib>

unsigned pickEntropy() {
  unsigned Raw = static_cast<unsigned>(rand());
  return Raw;
}
