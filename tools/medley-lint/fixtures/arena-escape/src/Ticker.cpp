//===-- fixtures/arena-escape/src/Ticker.cpp - Seeded known-bad tree ------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the arena-escape rule (L12). TickArena is the
// per-tick bump allocator; its storage dies at reset():
//
//   - tickClean():  allocate, fill, reset after the last use   -> pass
//   - tickStore():  arena pointer stored into a member          -> flag
//   - tickLeak():   arena pointer returned to the caller        -> flag
//   - tickBranch(): pointer used after a reset() on one branch  -> flag
//   - tickAcross(): pointer live across flush() (Flush.cpp),
//                   which resets the same arena                 -> flag
//
// This file must never be compiled or linted as part of the product
// tree.
//
//===----------------------------------------------------------------------===//

namespace support {
class Arena {
public:
  template <typename T> T *allocateArray(unsigned long N);
  void reset();
};
} // namespace support

class Ticker {
public:
  void tickClean(unsigned long N);
  void tickStore(unsigned long N);
  float *tickLeak(unsigned long N);
  void tickBranch(unsigned long N, bool Flush);
  void tickAcross(unsigned long N);
  void flush(); // out-of-line in Flush.cpp; resets TickArena

private:
  support::Arena TickArena;
  float *Stale = nullptr;
};

void Ticker::tickClean(unsigned long N) {
  float *Buf = TickArena.allocateArray<float>(N);
  for (unsigned long I = 0; I < N; ++I)
    Buf[I] = 0.0f;
  TickArena.reset(); // ok: Buf is dead by now
}

void Ticker::tickStore(unsigned long N) {
  float *Buf = TickArena.allocateArray<float>(N);
  Stale = Buf; // <- arena-escape: outlives the tick
}

float *Ticker::tickLeak(unsigned long N) {
  float *Buf = TickArena.allocateArray<float>(N);
  return Buf; // <- arena-escape: caller outlives the storage
}

void Ticker::tickBranch(unsigned long N, bool Flush) {
  float *Buf = TickArena.allocateArray<float>(N);
  Buf[0] = 1.0f;
  if (Flush)
    TickArena.reset();
  Buf[0] = 2.0f; // <- arena-escape: freed on the Flush path
}

void Ticker::tickAcross(unsigned long N) {
  float *Buf = TickArena.allocateArray<float>(N);
  Buf[0] = 1.0f;
  flush(); // <- arena-escape: flush() resets TickArena
  Buf[0] = 2.0f;
}
