//===-- fixtures/arena-escape/src/Flush.cpp - Cross-TU reset leg ----------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// The out-of-line definition of Ticker::flush for the arena-escape
// fixture: it resets TickArena, so a pointer held live across a
// flush() call in Ticker.cpp must be flagged even though the reset
// lives in a different translation unit. refill() is the pass case —
// reset followed by a fresh allocation is the normal tick cycle. This
// file must never be compiled or linted as part of the product tree.
//
//===----------------------------------------------------------------------===//

namespace support {
class Arena {
public:
  template <typename T> T *allocateArray(unsigned long N);
  void reset();
};
} // namespace support

class Ticker {
public:
  void flush();
  void refill(unsigned long N);

private:
  support::Arena TickArena;
  float *Stale = nullptr;
};

void Ticker::flush() { TickArena.reset(); }

void Ticker::refill(unsigned long N) {
  TickArena.reset();
  float *Buf = TickArena.allocateArray<float>(N);
  Buf[0] = 0.0f; // ok: allocated after the reset
}
