//===-- fixtures/cross-thread-write/src/Worker.cpp - Cross-TU leg ---------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// The out-of-line definition of Aggregator::record for the
// cross-thread-write fixture: the task body in Aggregator.cpp calls
// record(), so the unguarded `Sum += V` here must be flagged even
// though the spawn site lives in a different translation unit. The
// locked variant below it must not. This file must never be compiled
// or linted as part of the product tree.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <mutex>

class Aggregator {
public:
  void runAll(void *Pool, unsigned long N);
  void bump(long K);
  void record(long V);
  void recordLocked(long V);

private:
  long Hits = 0;
  long Mixed = 0;
  long Guarded = 0;
  long Notes = 0;
  long Sum = 0;
  std::atomic<long> Epoch{0};
  std::mutex Mu;
};

void Aggregator::record(long V) {
  Sum += V; // <- cross-thread-write: reached from the task body
}

void Aggregator::recordLocked(long V) {
  std::lock_guard<std::mutex> G(Mu);
  Sum += V; // ok: Mu held for the whole body
}
