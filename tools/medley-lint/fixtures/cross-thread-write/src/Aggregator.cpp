//===-- fixtures/cross-thread-write/src/Aggregator.cpp - Seeded bad tree --===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the cross-thread-write rule (L10). The lambda
// handed to parallelFor is a thread-task body; from it the analyzer
// must flag exactly three writes:
//
//   - `Hits += 1`  directly in the task body, no lock held;
//   - `Mixed += K` in bump(): the guarded branch releases Mu before the
//     join point, so the must-held set is empty at the write
//     (flow-sensitivity — the `Guarded += K` write inside the guard
//     scope must NOT fire);
//   - `Sum += V`   in Aggregator::record, defined in Worker.cpp (the
//     cross-translation-unit leg).
//
// Everything else is a pass case: atomic destinations, writes under a
// held lock_guard, and calls on task-local objects. This file must
// never be compiled or linted as part of the product tree.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <mutex>

struct MiniPool {
  template <typename Fn> void parallelFor(unsigned long N, Fn &&Body);
};

class Aggregator {
public:
  void runAll(MiniPool &Pool, unsigned long N);
  void bump(long K);
  void record(long V); // out-of-line in Worker.cpp
  void note(long V) { Notes += V; }

private:
  long Hits = 0;              // seeded race: written lock-free on-task
  long Mixed = 0;             // seeded race: written at a lock-free join
  long Guarded = 0;           // pass: only written under Mu
  long Notes = 0;             // pass: only written via task-local objects
  long Sum = 0;               // seeded race: written by record()
  std::atomic<long> Epoch{0}; // pass: atomic destination
  std::mutex Mu;
};

void Aggregator::runAll(MiniPool &Pool, unsigned long N) {
  Pool.parallelFor(N, [this](unsigned long I) {
    Hits += 1;                          // <- cross-thread-write
    Epoch = static_cast<long>(I);       // ok: atomic
    {
      std::lock_guard<std::mutex> G(Mu);
      Guarded += 1;                     // ok: Mu held
    }
    bump(static_cast<long>(I));
    record(static_cast<long>(I));
    Aggregator Local;
    Local.note(5);                      // ok: task-local receiver
  });
}

void Aggregator::bump(long K) {
  if (K > 0) {
    std::lock_guard<std::mutex> G(Mu);
    Guarded += K; // ok: guarded on this path
  }
  Mixed += K; // <- cross-thread-write: the join point holds no lock
}
