//===-- fixtures/registry-lock/src/Acquire.cpp - Seeded known-bad tree ----===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// Seeded fixture for the expert-lifecycle entry points: a registry reader
// that takes the publish lock on the acquire path. ExpertRegistry::acquire
// is an L7 decision entry, so the allocation it reaches through
// repinSnapshot (Repin.cpp, a different translation unit) must fire
// hotpath-escape, and the sleep under PublishMutex must fire the L8
// held-across-blocking-call check. This is exactly the design the real
// registry exists to forbid: readers pin snapshots with one atomic load,
// never a lock. This file must never be compiled or linted as part of the
// product tree.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

std::vector<int> repinSnapshot(int Version);

class ExpertRegistry {
public:
  int acquire(int Version);

private:
  std::mutex PublishMutex;
  std::vector<int> Pinned;
};

int ExpertRegistry::acquire(int Version) {
  std::lock_guard<std::mutex> Guard(PublishMutex);
  // Waiting out a concurrent publication while holding its mutex: every
  // other reader stalls for the full publication.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Pinned = repinSnapshot(Version);
  return Pinned.empty() ? -1 : Pinned.front();
}
