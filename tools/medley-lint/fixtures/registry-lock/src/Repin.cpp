//===-- fixtures/registry-lock/src/Repin.cpp - Seeded known-bad tree ------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// The escape itself: the naive reader re-pins by materialising a fresh
// copy of the snapshot, one call below the acquire entry. Only the linked
// call graph connects ExpertRegistry::acquire -> repinSnapshot to the
// push_back below.
//
//===----------------------------------------------------------------------===//

#include <vector>

std::vector<int> repinSnapshot(int Version) {
  std::vector<int> Out;
  for (int I = 0; I < Version; ++I)
    Out.push_back(I);
  return Out;
}
