//===-- tools/medley-lint/Sarif.cpp - SARIF 2.1.0 report -----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Findings as a SARIF 2.1.0 log: one run, one result per finding,
/// rule ids collected into the driver's rule table. Kept to the subset
/// editors and CI annotators actually read, and — like every other
/// medley-lint report — byte-stable across runs.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Internal.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

using namespace medley::lint;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string medley::lint::renderSarif(const std::vector<Finding> &Findings) {
  std::vector<Finding> Sorted = Findings;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Finding &A, const Finding &B) {
              return std::tie(A.File, A.Line, A.Col, A.Rule, A.Message) <
                     std::tie(B.File, B.Line, B.Col, B.Rule, B.Message);
            });

  std::set<std::string> Rules;
  for (const Finding &F : Sorted)
    Rules.insert(F.Rule);

  std::ostringstream OS;
  OS << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"medley-lint\",\n"
     << "          \"informationUri\": \"DESIGN.md\",\n"
     << "          \"rules\": [";
  {
    bool First = true;
    for (const std::string &Rule : Rules) {
      OS << (First ? "\n" : ",\n")
         << "            {\"id\": \"" << jsonEscape(Rule) << "\"}";
      First = false;
    }
  }
  OS << (Rules.empty() ? "]\n" : "\n          ]\n");
  OS << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  for (size_t I = 0; I < Sorted.size(); ++I) {
    const Finding &F = Sorted[I];
    OS << (I ? ",\n" : "\n");
    OS << "        {\"ruleId\": \"" << jsonEscape(F.Rule)
       << "\", \"level\": \"warning\", \"message\": {\"text\": \""
       << jsonEscape(F.Message) << "\"}, \"locations\": [{"
       << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << jsonEscape(F.File) << "\"}, \"region\": {\"startLine\": " << F.Line
       << ", \"startColumn\": " << F.Col << "}}}]}";
  }
  OS << (Sorted.empty() ? "]\n" : "\n      ]\n");
  OS << "    }\n  ]\n}\n";
  return OS.str();
}
