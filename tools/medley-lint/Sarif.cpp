//===-- tools/medley-lint/Sarif.cpp - SARIF 2.1.0 report -----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Findings as a SARIF 2.1.0 log: one run, one result per finding. The
/// driver's `rules` table carries the full L1–L12 catalog (id, name,
/// one-line shortDescription) whether or not a rule fired, results
/// reference it by `ruleIndex`, and each result carries a
/// `partialFingerprints` entry — the FNV-1a hash of the
/// position-independent baseline key — so CI result matching survives
/// unrelated edits above a finding. Kept to the subset editors and CI
/// annotators actually read, and — like every other medley-lint report
/// — byte-stable across runs.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Cache.h"
#include "medley-lint/Internal.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>

using namespace medley::lint;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string medley::lint::renderSarif(const std::vector<Finding> &Findings) {
  std::vector<Finding> Sorted = Findings;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Finding &A, const Finding &B) {
              return std::tie(A.File, A.Line, A.Col, A.Rule, A.Message) <
                     std::tie(B.File, B.Line, B.Col, B.Rule, B.Message);
            });

  const std::vector<RuleMeta> &Catalog = ruleCatalog();
  std::map<std::string, size_t> RuleIndex;
  for (size_t I = 0; I < Catalog.size(); ++I)
    RuleIndex.emplace(Catalog[I].Id, I);

  std::ostringstream OS;
  OS << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"medley-lint\",\n"
     << "          \"informationUri\": \"DESIGN.md\",\n"
     << "          \"rules\": [";
  for (size_t I = 0; I < Catalog.size(); ++I) {
    const RuleMeta &M = Catalog[I];
    OS << (I ? ",\n" : "\n") << "            {\"id\": \"" << jsonEscape(M.Id)
       << "\", \"name\": \"" << jsonEscape(M.Name)
       << "\", \"shortDescription\": {\"text\": \"" << jsonEscape(M.Short)
       << "\"}}";
  }
  OS << (Catalog.empty() ? "]\n" : "\n          ]\n");
  OS << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  for (size_t I = 0; I < Sorted.size(); ++I) {
    const Finding &F = Sorted[I];
    char Fp[24];
    std::snprintf(Fp, sizeof(Fp), "%016llx",
                  fnv1aHash(renderBaselineKey(F)));
    OS << (I ? ",\n" : "\n");
    OS << "        {\"ruleId\": \"" << jsonEscape(F.Rule) << "\"";
    auto RI = RuleIndex.find(F.Rule);
    if (RI != RuleIndex.end())
      OS << ", \"ruleIndex\": " << RI->second;
    OS << ", \"level\": \"warning\", \"message\": {\"text\": \""
       << jsonEscape(F.Message) << "\"}, \"locations\": [{"
       << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << jsonEscape(F.File) << "\"}, \"region\": {\"startLine\": " << F.Line
       << ", \"startColumn\": " << F.Col
       << "}}}], \"partialFingerprints\": {\"medleyLintKey/v1\": \"" << Fp
       << "\"}}";
  }
  OS << (Sorted.empty() ? "]\n" : "\n      ]\n");
  OS << "    }\n  ]\n}\n";
  return OS.str();
}
