//===-- tools/medley-lint/Dataflow.cpp - Concrete dataflow domains -------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three concrete lattices behind the L10–L12 summaries
/// (DESIGN.md §15), plus the recording pass that replays each block
/// under the fixpoint facts and emits the per-function summaries:
///
///  - must-held locks: forward, meet = set intersection with a Top
///    ("unreached") element, so a write is "unguarded" only when a
///    *reachable* path arrives with no lock held.
///  - tracked pointers: forward, meet = union of var → origin maps;
///    origins are "acquire" (registry snapshot) and "arena:<id>"
///    (bump-allocator storage, with a reset flag once the matching
///    arena's reset() is seen on the path).
///  - liveness: backward, meet = union — which tracked locals are
///    still read after a program point; it decides the
///    held-across-call retention sites.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Dataflow.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

using namespace medley::lint;

namespace {

//===----------------------------------------------------------------------===//
// Must-held locks (forward)
//===----------------------------------------------------------------------===//

struct MustLockValue {
  bool Top = true; ///< Not yet reached; identity of the intersection.
  std::set<std::string> Locks;
};

struct MustLockDomain {
  using Value = MustLockValue;
  Value boundary() const { return {false, {}}; }
  Value init() const { return {true, {}}; }
  bool meetInto(Value &Into, const Value &From) const {
    if (From.Top)
      return false;
    if (Into.Top) {
      Into = From;
      return true;
    }
    std::set<std::string> Inter;
    std::set_intersection(Into.Locks.begin(), Into.Locks.end(),
                          From.Locks.begin(), From.Locks.end(),
                          std::inserter(Inter, Inter.begin()));
    if (Inter == Into.Locks)
      return false;
    Into.Locks = std::move(Inter);
    return true;
  }
  void transfer(const CfgStmt &S, Value &V) const {
    if (S.K == CfgStmt::Acquire)
      V.Locks.insert(S.Id);
    else if (S.K == CfgStmt::Release)
      V.Locks.erase(S.Id);
  }
};

//===----------------------------------------------------------------------===//
// Tracked pointers (forward)
//===----------------------------------------------------------------------===//

struct TrackInfo {
  std::string Origin;
  bool Reset = false;
};

struct TrackDomain {
  /// var → where its pointee came from. Merging two origins keeps the
  /// lexicographic minimum (deterministic) and ORs the reset flag.
  using Value = std::map<std::string, TrackInfo>;
  Value boundary() const { return {}; }
  Value init() const { return {}; }
  bool meetInto(Value &Into, const Value &From) const {
    bool Changed = false;
    for (const auto &KV : From) {
      auto It = Into.find(KV.first);
      if (It == Into.end()) {
        Into.insert(KV);
        Changed = true;
        continue;
      }
      if (KV.second.Origin < It->second.Origin) {
        It->second.Origin = KV.second.Origin;
        Changed = true;
      }
      if (KV.second.Reset && !It->second.Reset) {
        It->second.Reset = true;
        Changed = true;
      }
    }
    return Changed;
  }
  void transfer(const CfgStmt &S, Value &V) const {
    switch (S.K) {
    case CfgStmt::Def: {
      if (!S.Origin.empty()) {
        V[S.Id] = {S.Origin, false};
        return;
      }
      const TrackInfo *Found = nullptr;
      TrackInfo Merged;
      for (const std::string &A : S.Aliases) {
        auto It = V.find(A);
        if (It == V.end())
          continue;
        if (!Found) {
          Merged = It->second;
          Found = &It->second;
          continue;
        }
        if (It->second.Origin < Merged.Origin)
          Merged.Origin = It->second.Origin;
        Merged.Reset |= It->second.Reset;
      }
      if (Found)
        V[S.Id] = Merged;
      else
        V.erase(S.Id);
      return;
    }
    case CfgStmt::ArenaReset: {
      std::string Key = "arena:" + S.Id;
      for (auto &KV : V)
        if (KV.second.Origin == Key)
          KV.second.Reset = true;
      return;
    }
    default:
      return;
    }
  }
};

//===----------------------------------------------------------------------===//
// Liveness (backward)
//===----------------------------------------------------------------------===//

struct LiveDomain {
  using Value = std::set<std::string>;
  Value boundary() const { return {}; }
  Value init() const { return {}; }
  bool meetInto(Value &Into, const Value &From) const {
    bool Changed = false;
    for (const std::string &V : From)
      Changed |= Into.insert(V).second;
    return Changed;
  }
  void transfer(const CfgStmt &S, Value &V) const {
    switch (S.K) {
    case CfgStmt::Def:
      V.erase(S.Id);
      for (const std::string &A : S.Aliases)
        V.insert(A);
      return;
    case CfgStmt::Use:
      V.insert(S.Id);
      return;
    case CfgStmt::Write:
    case CfgStmt::Ret:
      for (const std::string &A : S.Aliases)
        V.insert(A);
      return;
    default:
      return;
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Summary extraction
//===----------------------------------------------------------------------===//

void medley::lint::computeFlowSummaries(const FunctionCfg &Cfg,
                                        FunctionInfo &Fn) {
  if (Cfg.Blocks.empty())
    return;
  MustLockDomain LockD;
  TrackDomain TrackD;
  LiveDomain LiveD;
  std::vector<MustLockValue> LockIn = solveForward(Cfg, LockD);
  std::vector<TrackDomain::Value> TrackIn = solveForward(Cfg, TrackD);
  std::vector<LiveDomain::Value> LiveOut = solveBackward(Cfg, LiveD);

  // One held-across-call site per (var, callee) pair per function.
  std::set<std::pair<std::string, std::string>> AcrossSeen;

  for (unsigned B = 0; B < Cfg.Blocks.size(); ++B) {
    const std::vector<CfgStmt> &Stmts = Cfg.Blocks[B].Stmts;
    MustLockValue Locks = LockIn[B];
    TrackDomain::Value Track = TrackIn[B];

    // Per-statement live-after, from the block's live-out backwards.
    std::vector<LiveDomain::Value> LiveAfter(Stmts.size());
    LiveDomain::Value L = LiveOut[B];
    for (size_t S = Stmts.size(); S-- > 0;) {
      LiveAfter[S] = L;
      LiveD.transfer(Stmts[S], L);
    }

    for (size_t SI = 0; SI < Stmts.size(); ++SI) {
      const CfgStmt &S = Stmts[SI];
      bool LockFree = !Locks.Top && Locks.Locks.empty();
      switch (S.K) {
      case CfgStmt::Write: {
        if (LockFree) {
          UnguardedWrite W;
          W.Lhs = S.Id;
          W.Base = S.Base;
          W.Last = S.Last;
          W.Line = S.Line;
          W.Col = S.Col;
          W.LineText = S.LineText;
          Fn.Writes.push_back(std::move(W));
        }
        for (const std::string &A : S.Aliases) {
          auto It = Track.find(A);
          if (It == Track.end())
            continue;
          RetentionSite R;
          R.K = RetentionSite::StoreTo;
          R.Var = A;
          R.Origin = It->second.Origin;
          R.Base = S.Base;
          R.Last = S.Last;
          R.Line = S.Line;
          R.Col = S.Col;
          R.LineText = S.LineText;
          Fn.Retentions.push_back(std::move(R));
        }
        break;
      }
      case CfgStmt::Use: {
        auto It = Track.find(S.Id);
        if (It != Track.end() && It->second.Reset) {
          RetentionSite R;
          R.K = RetentionSite::UseAfterReset;
          R.Var = S.Id;
          R.Origin = It->second.Origin;
          R.Line = S.Line;
          R.Col = S.Col;
          R.LineText = S.LineText;
          Fn.Retentions.push_back(std::move(R));
        }
        break;
      }
      case CfgStmt::Call: {
        FlowCall FC;
        FC.Name = S.Id;
        FC.Qualifier = S.Qual;
        FC.IsMember = S.Member;
        FC.LocalRecv = S.LocalRecv;
        FC.LockFree = LockFree;
        FC.Line = S.Line;
        FC.Col = S.Col;
        Fn.FlowCalls.push_back(std::move(FC));
        for (const auto &KV : Track) {
          if (!LiveAfter[SI].count(KV.first))
            continue;
          if (!AcrossSeen.insert({KV.first, S.Id}).second)
            continue;
          RetentionSite R;
          R.K = RetentionSite::AcrossCall;
          R.Var = KV.first;
          R.Origin = KV.second.Origin;
          R.Callee = S.Id;
          R.CalleeQual = S.Qual;
          R.CalleeMember = S.Member;
          R.Line = S.Line;
          R.Col = S.Col;
          R.LineText = S.LineText;
          Fn.Retentions.push_back(std::move(R));
        }
        break;
      }
      case CfgStmt::Ret: {
        if (!S.Origin.empty()) {
          RetentionSite R;
          R.K = RetentionSite::ReturnFrom;
          R.Var = "<result>";
          R.Origin = S.Origin;
          R.Line = S.Line;
          R.Col = S.Col;
          R.LineText = S.LineText;
          Fn.Retentions.push_back(std::move(R));
        }
        for (const std::string &A : S.Aliases) {
          auto It = Track.find(A);
          if (It == Track.end())
            continue;
          RetentionSite R;
          R.K = RetentionSite::ReturnFrom;
          R.Var = A;
          R.Origin = It->second.Origin;
          R.Line = S.Line;
          R.Col = S.Col;
          R.LineText = S.LineText;
          Fn.Retentions.push_back(std::move(R));
        }
        break;
      }
      case CfgStmt::ArenaReset:
        Fn.ResetArenas.push_back(S.Id);
        break;
      default:
        break;
      }
      LockD.transfer(S, Locks);
      TrackD.transfer(S, Track);
    }
  }

  // Deterministic summaries, independent of CFG block numbering.
  auto WriteKey = [](const UnguardedWrite &W) {
    return std::make_tuple(W.Line, W.Col, W.Lhs);
  };
  std::sort(Fn.Writes.begin(), Fn.Writes.end(),
            [&](const UnguardedWrite &A, const UnguardedWrite &B) {
              return WriteKey(A) < WriteKey(B);
            });
  Fn.Writes.erase(std::unique(Fn.Writes.begin(), Fn.Writes.end(),
                              [&](const UnguardedWrite &A,
                                  const UnguardedWrite &B) {
                                return WriteKey(A) == WriteKey(B);
                              }),
                  Fn.Writes.end());

  auto RetKey = [](const RetentionSite &R) {
    return std::make_tuple(R.Line, R.Col, R.K, R.Var, R.Origin, R.Callee);
  };
  std::sort(Fn.Retentions.begin(), Fn.Retentions.end(),
            [&](const RetentionSite &A, const RetentionSite &B) {
              return RetKey(A) < RetKey(B);
            });
  Fn.Retentions.erase(
      std::unique(Fn.Retentions.begin(), Fn.Retentions.end(),
                  [&](const RetentionSite &A, const RetentionSite &B) {
                    return RetKey(A) == RetKey(B);
                  }),
      Fn.Retentions.end());

  auto CallKey = [](const FlowCall &C) {
    return std::make_tuple(C.Line, C.Col, C.Name, C.IsMember);
  };
  std::sort(Fn.FlowCalls.begin(), Fn.FlowCalls.end(),
            [&](const FlowCall &A, const FlowCall &B) {
              return CallKey(A) < CallKey(B);
            });
  Fn.FlowCalls.erase(std::unique(Fn.FlowCalls.begin(), Fn.FlowCalls.end(),
                                 [&](const FlowCall &A, const FlowCall &B) {
                                   return CallKey(A) == CallKey(B);
                                 }),
                     Fn.FlowCalls.end());

  std::sort(Fn.ResetArenas.begin(), Fn.ResetArenas.end());
  Fn.ResetArenas.erase(
      std::unique(Fn.ResetArenas.begin(), Fn.ResetArenas.end()),
      Fn.ResetArenas.end());
}
