//===-- tools/medley-lint/CallGraph.cpp - Linked project graph -----------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "medley-lint/CallGraph.h"
#include "medley-lint/Internal.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace medley::lint;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// True when \p Qual ends with the written suffix \p Qualifier::Name on
/// a component boundary: `linalg::add` matches `medley::linalg::add`.
bool qualSuffixMatches(const std::string &Qual, const std::string &Qualifier,
                       const std::string &Name) {
  std::string Suffix = Qualifier.empty() ? Name : Qualifier + "::" + Name;
  if (Qual == Suffix)
    return true;
  if (Qual.size() < Suffix.size() + 2)
    return false;
  if (Qual.compare(Qual.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
    return false;
  return Qual.compare(Qual.size() - Suffix.size() - 2, 2, "::") == 0;
}

} // namespace

bool CallGraph::allowedAt(size_t FileId, unsigned Line,
                          const std::string &Rule) const {
  if (FileId >= Files.size())
    return false;
  auto It = Files[FileId].AllowLines.find(Line);
  return It != Files[FileId].AllowLines.end() &&
         (It->second.count(Rule) || It->second.count("all"));
}

CallGraph medley::lint::linkCallGraph(const std::vector<FileIndex> &Indexes) {
  CallGraph G;

  // Deterministic merge regardless of how phase 1 was scheduled.
  std::vector<const FileIndex *> Sorted;
  Sorted.reserve(Indexes.size());
  for (const FileIndex &Ix : Indexes)
    Sorted.push_back(&Ix);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const FileIndex *A, const FileIndex *B) {
              return A->Path < B->Path;
            });

  for (const FileIndex *Ix : Sorted) {
    size_t FileId = G.Files.size();
    G.Files.push_back({Ix->Path, Ix->Kind, Ix->AllowLines});
    for (const FunctionInfo &Fn : Ix->Functions) {
      auto It = G.ByQual.find(Fn.Qual);
      if (It == G.ByQual.end()) {
        CallGraph::Node N;
        N.Qual = Fn.Qual;
        N.Name = Fn.Name;
        N.Class = Fn.Class;
        N.FileId = FileId;
        N.Line = Fn.Line;
        N.Col = Fn.Col;
        N.LineText = Fn.LineText;
        It = G.ByQual.emplace(Fn.Qual, G.Nodes.size()).first;
        G.Nodes.push_back(std::move(N));
      }
      CallGraph::Node &N = G.Nodes[It->second];
      N.HasSource |= Fn.HasSource;
      N.IsThreadBody |= Fn.IsThreadBody;
      for (const CallSite &C : Fn.Calls)
        N.Calls.emplace_back(C, FileId);
      for (const AllocSite &A : Fn.Allocs)
        N.Allocs.emplace_back(A, FileId);
      for (const LockAcq &Q : Fn.Acquires)
        N.Acquires.emplace_back(Q, FileId);
      for (const LockEdge &E : Fn.LockEdges)
        N.LockEdges.emplace_back(E, FileId);
      for (const TaintFlow &F : Fn.Flows)
        N.Flows.push_back(F);
      for (const SinkUse &S : Fn.Sinks)
        N.Sinks.emplace_back(S, FileId);
      for (const UnguardedWrite &W : Fn.Writes)
        N.Writes.emplace_back(W, FileId);
      for (const RetentionSite &R : Fn.Retentions)
        N.Retentions.emplace_back(R, FileId);
      N.FlowCalls.insert(N.FlowCalls.end(), Fn.FlowCalls.begin(),
                         Fn.FlowCalls.end());
      N.ResetArenas.insert(N.ResetArenas.end(), Fn.ResetArenas.begin(),
                           Fn.ResetArenas.end());
      N.SpawnedBodies.insert(N.SpawnedBodies.end(), Fn.SpawnedBodies.begin(),
                             Fn.SpawnedBodies.end());
    }
    for (const FieldDecl &FD : Ix->Fields) {
      auto Key = std::make_pair(FD.Class, FD.Name);
      auto It = G.Fields.find(Key);
      if (It == G.Fields.end()) {
        G.Fields.emplace(Key, FD);
      } else {
        It->second.Atomic |= FD.Atomic;
        It->second.Mutex |= FD.Mutex;
      }
    }
  }

  // Sort nodes by qualified name and rebuild the id maps so the graph
  // shape is independent of file order too.
  std::vector<size_t> Order(G.Nodes.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&G](size_t A, size_t B) {
    return G.Nodes[A].Qual < G.Nodes[B].Qual;
  });
  std::vector<CallGraph::Node> SortedNodes;
  SortedNodes.reserve(G.Nodes.size());
  for (size_t Id : Order)
    SortedNodes.push_back(std::move(G.Nodes[Id]));
  G.Nodes = std::move(SortedNodes);
  G.ByQual.clear();
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    G.ByQual.emplace(G.Nodes[I].Qual, I);
    G.ByName.emplace(G.Nodes[I].Name, I);
  }

  // Resolve every call site once; Edges holds the per-node union. A
  // spawned lambda body is an explicit edge from its defining function
  // (the spawn call is not a name-resolvable call site).
  G.Edges.assign(G.Nodes.size(), {});
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    std::vector<size_t> &Out = G.Edges[I];
    for (const auto &[CS, FileId] : G.Nodes[I].Calls) {
      (void)FileId;
      std::vector<size_t> Targets = resolveCall(G, G.Nodes[I], CS);
      Out.insert(Out.end(), Targets.begin(), Targets.end());
    }
    for (const std::string &Body : G.Nodes[I].SpawnedBodies) {
      auto It = G.ByQual.find(Body);
      if (It != G.ByQual.end())
        Out.push_back(It->second);
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }
  return G;
}

std::vector<size_t> medley::lint::resolveCall(const CallGraph &G,
                                              const CallGraph::Node &From,
                                              const CallSite &CS) {
  std::vector<size_t> Out;
  auto [Lo, Hi] = G.ByName.equal_range(CS.Name);
  for (auto It = Lo; It != Hi; ++It) {
    const CallGraph::Node &Cand = G.Nodes[It->second];
    if (&Cand == &From)
      continue; // Self-recursion adds nothing to reachability.
    if (CS.IsMember) {
      if (!Cand.Class.empty())
        Out.push_back(It->second);
    } else if (!CS.Qualifier.empty()) {
      if (qualSuffixMatches(Cand.Qual, CS.Qualifier, CS.Name))
        Out.push_back(It->second);
    } else {
      if (Cand.Class.empty() ||
          (!From.Class.empty() && Cand.Class == From.Class))
        Out.push_back(It->second);
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string medley::lint::renderGraphJson(const CallGraph &G) {
  std::ostringstream OS;
  OS << "{\n  \"functions\": [";
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    const CallGraph::Node &N = G.Nodes[I];
    OS << (I ? ",\n" : "\n");
    OS << "    {\"qual\": \"" << jsonEscape(N.Qual) << "\", \"file\": \""
       << jsonEscape(G.Files[N.FileId].Path) << "\", \"line\": " << N.Line
       << ", \"allocs\": " << N.Allocs.size() << ", \"has_source\": "
       << (N.HasSource ? "true" : "false") << ", \"calls\": [";
    for (size_t J = 0; J < G.Edges[I].size(); ++J)
      OS << (J ? ", " : "") << "\"" << jsonEscape(G.Nodes[G.Edges[I][J]].Qual)
         << "\"";
    OS << "]}";
  }
  OS << (G.Nodes.empty() ? "],\n" : "\n  ],\n");
  OS << "  \"files\": " << G.Files.size() << ",\n  \"nodes\": "
     << G.Nodes.size() << "\n}\n";
  return OS.str();
}
