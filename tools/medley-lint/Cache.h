//===-- tools/medley-lint/Cache.h - Incremental result cache ----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental per-file cache (DESIGN.md §12): for every analyzed
/// file it stores the FNV-1a hash of the content, the post-suppression
/// token findings, and the serialized FileIndex. A warm run re-hashes
/// each file (cheap) and skips lexing/rule-running/indexing on a hit;
/// phase 2 always re-links, so interprocedural results stay correct
/// when *other* files changed. The cache file is rewritten wholesale
/// after each run, which prunes entries for deleted files; a version
/// header invalidates everything when the format or rule set moves.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_CACHE_H
#define MEDLEY_TOOLS_LINT_CACHE_H

#include "medley-lint/Index.h"

namespace medley::lint {

/// 64-bit FNV-1a over the raw bytes.
unsigned long long fnv1aHash(const std::string &Data);

/// The analyzer-identity fingerprint folded into the cache header:
/// FNV-1a over the analyzer version, the full rule catalog (ids, names,
/// descriptions) and \p Salt. Content hashes alone cannot invalidate a
/// warm cache when the *analyzer* changed — bumping any rule or the
/// serialization format changes this value and turns the next run cold.
unsigned long long cacheFingerprint(const std::string &Salt);

/// One cached file result.
struct CacheEntry {
  unsigned long long Hash = 0;
  std::vector<Finding> TokenFindings; ///< Post-allow single-file findings.
  FileIndex Index;
};

/// The cache as a whole. Thread-safety contract: lookup() is const and
/// safe to call concurrently once load() finished; put()/save() are
/// single-threaded (the driver calls them after the parallel phase).
class LintCache {
public:
  /// Sets the analyzer fingerprint checked by load() and written by
  /// save(). Call before load(); entries saved under a different
  /// fingerprint are ignored wholesale.
  void setFingerprint(unsigned long long F) { Fingerprint = F; }

  /// Reads \p Path; a missing, unreadable, version- or
  /// fingerprint-mismatched file just leaves the cache empty (a cold
  /// run).
  void load(const std::string &Path);

  /// On a hit (\p File present with matching \p Hash) copies the entry
  /// into \p Out and returns true.
  bool lookup(const std::string &File, unsigned long long Hash,
              CacheEntry &Out) const;

  /// Inserts/replaces the entry for E.Index.Path.
  void put(CacheEntry E);

  /// Writes every entry, sorted by path. Returns false on IO error.
  bool save(const std::string &Path) const;

  size_t size() const { return Entries.size(); }

private:
  std::map<std::string, CacheEntry> Entries;
  unsigned long long Fingerprint = 0;
};

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_CACHE_H
