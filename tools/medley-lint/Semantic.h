//===-- tools/medley-lint/Semantic.h - Interprocedural rules ----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 2 of the semantic analyzer (DESIGN.md §12): the three
/// interprocedural rule families over the linked CallGraph, plus
/// analyzeSources — the orchestration that runs phase 1 in parallel
/// over files (support::ThreadPool, deterministic merge), consults the
/// incremental cache, links the graph, and runs:
///
///   hotpath-escape    (L7)  "may-allocate" propagated transitively up
///                           the call graph; any path from a decision
///                           entry point to an allocation site is
///                           flagged *at the allocation site* with the
///                           shortest entry path in the message, so an
///                           allow annotation at the site is precise.
///   lock-order        (L8)  a global lock-acquisition-order graph
///                           (intra-function orderings plus locks held
///                           across calls into lock-taking callees);
///                           cycles and locks held across blocking
///                           calls (join/sleep/system/parallelFor) are
///                           flagged.
///   determinism-taint (L9)  entropy/wall-clock taint tracked through
///                           assignments and returns; tainted values
///                           reaching RNG seeds or stream/trace output
///                           are flagged unless the sink is annotated.
///
/// The flow-sensitive families (DESIGN.md §15) consume the per-function
/// CFG + dataflow summaries the indexer computes in phase 1:
///
///   cross-thread-write  (L10) non-atomic fields/globals written with no
///                             lock held on any path reachable from a
///                             thread-task body (lambdas handed to
///                             parallelFor/submit/retrainAsync/...).
///   snapshot-retention  (L11) ExpertSnapshot pointers from
///                             ExpertRegistry::acquire stored into
///                             fields/globals, returned, or held live
///                             across maintain()/blocking calls.
///   arena-escape        (L12) support::Arena::allocateArray storage
///                             escaping its tick scope (stored,
///                             returned) or used after the matching
///                             arena's reset() on any path.
///
/// All six traverse only src/ and src/support/ definitions — tests,
/// benches and apps may allocate, lock and log as they please.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_SEMANTIC_H
#define MEDLEY_TOOLS_LINT_SEMANTIC_H

#include "medley-lint/CallGraph.h"

namespace medley::lint {

/// One source file handed to the analyzer; Path is the reported
/// (root-stripped) path.
struct SourceFile {
  std::string Path;
  std::string Source;
};

struct AnalyzeOptions {
  bool Semantic = true;   ///< Run phase 2 (L7–L12) after the token rules.
  unsigned Jobs = 0;      ///< Phase-1 worker count; 0 → defaultJobs().
  std::string CachePath;  ///< Incremental cache file; empty disables.
  /// Extra bytes folded into the cache fingerprint alongside the
  /// analyzer version and rule catalog. Tests use it to simulate a rule
  /// bump; production runs leave it empty.
  std::string FingerprintSalt;
};

struct AnalyzeResult {
  /// Token + semantic findings, allow-suppressed, sorted by
  /// (file, line, col, rule). Baselines are the caller's business.
  std::vector<Finding> Findings;
  /// The linked graph (empty when Semantic was off) for --graph-json.
  CallGraph Graph;
  /// Files served from the incremental cache this run (0 on a cold run).
  size_t CacheHits = 0;
};

/// True for the decision entry points L7 anchors on: MixtureOfExperts
/// methods (minus constructor/destructor), selector
/// select/choose/update/blendWeights, policy::buildFeatures, and
/// Simulation::step.
bool isDecisionEntry(const CallGraph::Node &N);

/// Runs L7–L9 over a linked graph; findings come back unsorted and
/// already allow-suppressed via the graph's per-file coverage.
std::vector<Finding> runSemanticRules(const CallGraph &G);

/// The whole pipeline: parallel phase 1 (token rules + indexing, cache
/// reuse by content hash), deterministic link, phase 2. Rewrites the
/// cache file afterwards when a cache path is set (a full rewrite, so
/// entries for deleted files age out).
AnalyzeResult analyzeSources(const std::vector<SourceFile> &Files,
                             const AnalyzeOptions &Opts);

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_SEMANTIC_H
