//===-- tools/medley-lint/Rules.cpp - The five rule families -------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-stream heuristics for the determinism & concurrency invariants.
/// Each rule walks the token vector of one file; none of them builds an
/// AST. False positives are expected to be rare and are silenced with
/// `// medley-lint: allow(<rule>)` at the offending line.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Internal.h"

#include <algorithm>
#include <cctype>

using namespace medley::lint;

namespace {

using Tokens = std::vector<Token>;

/// Context handed to every rule.
struct RuleCtx {
  const std::string &Path;
  FileKind Kind;
  const Tokens &Toks;
  const std::vector<std::string> &SourceLines;
  std::vector<Finding> &Out;

  const Token *at(size_t I) const { return I < Toks.size() ? &Toks[I] : nullptr; }

  bool identAt(size_t I, const char *Text) const {
    const Token *T = at(I);
    return T && T->K == Token::Ident && T->Text == Text;
  }
  bool punctAt(size_t I, const char *Text) const {
    const Token *T = at(I);
    return T && T->K == Token::Punct && T->Text == Text;
  }

  void report(const Token &At, const std::string &Rule,
              const std::string &Message) const {
    Finding F;
    F.File = Path;
    F.Line = At.Line;
    F.Col = At.Col;
    F.Rule = Rule;
    F.Message = Message;
    if (At.Line >= 1 && At.Line <= SourceLines.size())
      F.SourceLine = trim(SourceLines[At.Line - 1]);
    Out.push_back(std::move(F));
  }
};

/// True when \p Text spells a floating-point literal (decimal point, a
/// decimal exponent, or an f/F/l/L suffix on a fractional form). Hex
/// integers never qualify.
bool isFloatLiteral(const std::string &Text) {
  if (Text.size() > 1 && Text[0] == '0' && (Text[1] == 'x' || Text[1] == 'X'))
    return false;
  if (Text.find('.') != std::string::npos)
    return true;
  // 1e9 / 2E-3 — exponent without a dot still makes a double.
  for (size_t I = 1; I < Text.size(); ++I)
    if ((Text[I] == 'e' || Text[I] == 'E') &&
        std::isdigit(static_cast<unsigned char>(Text[0])))
      return true;
  return false;
}

bool isUnorderedTypeName(const std::string &S) {
  return S == "unordered_map" || S == "unordered_set" ||
         S == "unordered_multimap" || S == "unordered_multiset";
}

//===----------------------------------------------------------------------===//
// L1: nondeterminism — banned entropy/wall-clock sources in src/.
//===----------------------------------------------------------------------===//

void ruleNondeterminism(const RuleCtx &C) {
  if (C.Kind != FileKind::Src && C.Kind != FileKind::SrcSupport)
    return;
  const Tokens &T = C.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident)
      continue;
    const std::string &Name = T[I].Text;

    if (Name == "random_device") {
      C.report(T[I], RuleNondeterminism,
               "'std::random_device' is system entropy — all randomness in "
               "src/ must flow from a seeded support::Rng");
      continue;
    }

    if ((Name == "system_clock" || Name == "steady_clock" ||
         Name == "high_resolution_clock") &&
        C.punctAt(I + 1, "::") && C.identAt(I + 2, "now")) {
      C.report(T[I], RuleNondeterminism,
               "wall-clock read '" + Name +
                   "::now()' in src/ — measurements must use simulated time "
                   "so results are bit-identical across runs");
      continue;
    }

    if ((Name == "rand" || Name == "srand" || Name == "time") &&
        C.punctAt(I + 1, "(")) {
      // Skip member calls (x.time()) and qualified names from namespaces
      // other than std (mylib::rand()).
      if (I > 0 && T[I - 1].K == Token::Punct) {
        const std::string &Prev = T[I - 1].Text;
        if (Prev == "." || Prev == "->")
          continue;
        if (Prev == "::" && !(I >= 2 && C.identAt(I - 2, "std")))
          continue;
      }
      C.report(T[I], RuleNondeterminism,
               "call to '" + Name +
                   "' in src/ — use support::Rng (seeded) instead of libc "
                   "entropy/wall-clock");
    }
  }
}

//===----------------------------------------------------------------------===//
// L2: unordered-reduction — loops over unordered containers feeding an
// accumulation. Hash iteration order is implementation-defined; a
// reduction over it breaks the bit-identity contract of PR 1.
//===----------------------------------------------------------------------===//

bool isAccumulation(const Token &T) {
  static const char *Ops[] = {"+=", "-=", "*=", "/=", "|=", "&=", "^=", "<<"};
  if (T.K == Token::Punct)
    for (const char *Op : Ops)
      if (T.Text == Op)
        return true;
  static const char *Calls[] = {"push_back", "emplace_back", "append",
                                "insert", "emplace"};
  if (T.K == Token::Ident)
    for (const char *Call : Calls)
      if (T.Text == Call)
        return true;
  return false;
}

void ruleUnorderedReduction(const RuleCtx &C) {
  const Tokens &T = C.Toks;

  // Pass 1: names of variables declared with an unordered container
  // type (declarations and parameters alike).
  std::set<std::string> UnorderedVars;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident || !isUnorderedTypeName(T[I].Text))
      continue;
    size_t J = I + 1;
    if (C.punctAt(J, "<"))
      J = skipTemplateArgs(T, J);
    // Skip cv-qualifiers and declarator punctuation up to the name.
    while (J < T.size() &&
           ((T[J].K == Token::Punct &&
             (T[J].Text == "&" || T[J].Text == "*")) ||
            (T[J].K == Token::Ident && T[J].Text == "const")))
      ++J;
    if (J < T.size() && T[J].K == Token::Ident)
      UnorderedVars.insert(T[J].Text);
  }

  // Pass 2: for-loops whose range/header names one of those variables
  // (or an unordered type directly) and whose body accumulates.
  for (size_t I = 0; I + 1 < T.size(); ++I) {
    if (!C.identAt(I, "for") || !C.punctAt(I + 1, "("))
      continue;
    size_t HeaderEnd = skipBalanced(T, I + 1, "(", ")"); // one past ')'
    bool Unordered = false;
    bool IteratorStyle = false;
    for (size_t J = I + 2; J + 1 < HeaderEnd; ++J) {
      if (T[J].K != Token::Ident)
        continue;
      if (isUnorderedTypeName(T[J].Text) || UnorderedVars.count(T[J].Text))
        Unordered = true;
      if (T[J].Text == "begin" || T[J].Text == "cbegin")
        IteratorStyle = true;
    }
    // Range-for always iterates its range; an iterator loop needs the
    // begin() giveaway so `for (i = 0; i < m.size(); ++i)` stays legal.
    bool RangeFor = false;
    {
      int Depth = 0;
      for (size_t J = I + 1; J + 1 < HeaderEnd; ++J) {
        if (C.punctAt(J, "("))
          ++Depth;
        else if (C.punctAt(J, ")"))
          --Depth;
        else if (Depth == 1 && C.punctAt(J, ":"))
          RangeFor = true;
      }
    }
    if (!Unordered || !(RangeFor || IteratorStyle))
      continue;

    // Body: a brace block or a single statement.
    size_t BodyBegin = HeaderEnd;
    size_t BodyEnd;
    if (C.punctAt(BodyBegin, "{")) {
      BodyEnd = skipBalanced(T, BodyBegin, "{", "}");
    } else {
      BodyEnd = BodyBegin;
      while (BodyEnd < T.size() && !C.punctAt(BodyEnd, ";"))
        ++BodyEnd;
    }
    for (size_t J = BodyBegin; J < BodyEnd; ++J) {
      if (isAccumulation(T[J])) {
        C.report(T[I], RuleUnorderedReduction,
                 "loop over an unordered container accumulates into a "
                 "result — hash order is implementation-defined; iterate a "
                 "sorted copy or use std::map/std::set");
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// L3: raw-concurrency — threads and locks outside src/support/.
//===----------------------------------------------------------------------===//

void ruleRawConcurrency(const RuleCtx &C) {
  if (C.Kind == FileKind::SrcSupport)
    return;
  const Tokens &T = C.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident)
      continue;
    const std::string &Name = T[I].Text;

    if ((Name == "thread" || Name == "jthread") && I >= 2 &&
        C.punctAt(I - 1, "::") && C.identAt(I - 2, "std")) {
      // std::thread::hardware_concurrency() is a pure query, not a
      // spawned thread.
      if (C.punctAt(I + 1, "::"))
        continue;
      C.report(T[I], RuleRawConcurrency,
               "raw 'std::" + Name +
                   "' outside src/support/ — concurrency must go through "
                   "support::ThreadPool");
      continue;
    }

    bool MemberCall = I > 0 && T[I - 1].K == Token::Punct &&
                      (T[I - 1].Text == "." || T[I - 1].Text == "->") &&
                      C.punctAt(I + 1, "(");
    if (MemberCall && Name == "detach") {
      C.report(T[I], RuleRawConcurrency,
               "'.detach()' — detached threads escape join/exception "
               "propagation; use support::ThreadPool");
      continue;
    }
    if (MemberCall && Name == "lock" && C.punctAt(I + 2, ")")) {
      C.report(T[I], RuleRawConcurrency,
               "raw '.lock()' — use std::lock_guard/std::scoped_lock so "
               "unlock is exception-safe");
    }
  }
}

//===----------------------------------------------------------------------===//
// L4: float-equality — ==/!= against a floating literal, outside test
// assertion macros.
//===----------------------------------------------------------------------===//

/// True when token \p I sits (at any nesting depth) inside the argument
/// list of an EXPECT_* / ASSERT_* / GTEST_* macro. The walk is bounded
/// by the enclosing statement.
bool insideAssertionMacro(const RuleCtx &C, size_t I) {
  const Tokens &T = C.Toks;
  int Depth = 0;
  for (size_t J = I; J-- > 0;) {
    if (T[J].K == Token::Punct) {
      const std::string &P = T[J].Text;
      if (P == ")") {
        ++Depth;
      } else if (P == "(") {
        if (Depth > 0) {
          --Depth;
        } else {
          // An enclosing open paren: is it an assertion macro's?
          if (J > 0 && T[J - 1].K == Token::Ident) {
            const std::string &M = T[J - 1].Text;
            if (M.rfind("EXPECT_", 0) == 0 || M.rfind("ASSERT_", 0) == 0 ||
                M.rfind("GTEST_", 0) == 0)
              return true;
          }
          // Keep walking outward (e.g. EXPECT_TRUE(f(x == 1.0))).
        }
      } else if (Depth == 0 && (P == ";" || P == "{" || P == "}")) {
        return false;
      }
    }
  }
  return false;
}

void ruleFloatEquality(const RuleCtx &C) {
  const Tokens &T = C.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Punct || (T[I].Text != "==" && T[I].Text != "!="))
      continue;
    std::string Literal;
    if (I > 0 && T[I - 1].K == Token::Number && isFloatLiteral(T[I - 1].Text))
      Literal = T[I - 1].Text;
    size_t R = I + 1;
    if (C.punctAt(R, "-") || C.punctAt(R, "+"))
      ++R;
    if (Literal.empty() && R < T.size() && T[R].K == Token::Number &&
        isFloatLiteral(T[R].Text))
      Literal = T[R].Text;
    if (Literal.empty())
      continue;
    if (insideAssertionMacro(C, I))
      continue;
    C.report(T[I], RuleFloatEquality,
             "floating-point '" + T[I].Text + "' against literal '" + Literal +
                 "' — compare with an explicit tolerance (or annotate an "
                 "intentional exact check)");
  }
}

//===----------------------------------------------------------------------===//
// L5: error-check — a support::Error* out-parameter the function body
// never mentions means failures are silently dropped.
//===----------------------------------------------------------------------===//

void ruleErrorCheck(const RuleCtx &C) {
  const Tokens &T = C.Toks;
  for (size_t I = 0; I + 2 < T.size(); ++I) {
    if (!C.identAt(I, "Error") || !C.punctAt(I + 1, "*"))
      continue;
    const Token *NameTok = C.at(I + 2);
    if (!NameTok || NameTok->K != Token::Ident)
      continue;
    std::string Lower;
    for (char Ch : NameTok->Text)
      Lower += static_cast<char>(std::tolower(static_cast<unsigned char>(Ch)));
    if (Lower != "err" && Lower != "error")
      continue;

    // Close of the parameter list this declarator sits in: the first ')'
    // that is not balancing a later '('.
    size_t J = I + 3;
    int Depth = 0;
    for (; J < T.size(); ++J) {
      if (T[J].K != Token::Punct)
        continue;
      if (T[J].Text == "(")
        ++Depth;
      else if (T[J].Text == ")") {
        if (Depth == 0)
          break;
        --Depth;
      } else if (Depth == 0 && (T[J].Text == ";" || T[J].Text == "{")) {
        break; // Not a parameter after all (local declaration).
      }
    }
    if (J >= T.size() || !C.punctAt(J, ")"))
      continue;

    // A '{' before the next ';' means this is a definition with a body.
    size_t K = J + 1;
    while (K < T.size() && !C.punctAt(K, "{") && !C.punctAt(K, ";") &&
           !C.punctAt(K, ","))
      ++K;
    if (K >= T.size() || !C.punctAt(K, "{"))
      continue;

    size_t BodyEnd = skipBalanced(T, K, "{", "}");
    bool Mentioned = false;
    for (size_t B = K + 1; B + 1 < BodyEnd && !Mentioned; ++B)
      Mentioned = T[B].K == Token::Ident && T[B].Text == NameTok->Text;
    if (!Mentioned)
      C.report(*NameTok, RuleErrorCheck,
               "support::Error out-param '" + NameTok->Text +
                   "' is never read or assigned in this function body — "
                   "failures are silently dropped");
  }
}

//===----------------------------------------------------------------------===//
// L6: hotpath-alloc — value-returning linalg helpers on the decision hot
// path. add/sub/scale/hadamard return a fresh Vec per call; the files on
// the steady-state decision path must use the *Into/span kernels instead
// so a decision performs zero heap allocations (DESIGN.md §11).
//===----------------------------------------------------------------------===//

/// The hot-path file set, matched on the reported (root-relative or
/// absolute) path: everything under src/core/, the feature builders
/// src/policy/Features*, and the simulation tick loop.
bool isHotPathFile(const std::string &Path) {
  auto Contains = [&](const char *Needle) {
    return Path.find(Needle) != std::string::npos;
  };
  return Contains("src/core/") || Contains("src/policy/Features") ||
         Contains("src/sim/Simulation.cpp");
}

bool isAllocatingLinalgName(const std::string &S) {
  return S == "add" || S == "sub" || S == "scale" || S == "hadamard";
}

void ruleHotpathAlloc(const RuleCtx &C) {
  if (C.Kind != FileKind::Src || !isHotPathFile(C.Path))
    return;
  const Tokens &T = C.Toks;
  for (size_t I = 0; I < T.size(); ++I) {
    if (T[I].K != Token::Ident || !isAllocatingLinalgName(T[I].Text) ||
        !C.punctAt(I + 1, "("))
      continue;

    // Only call positions: member calls (x.add(...)) target some other
    // add, a preceding type name / declarator token means this is a
    // declaration, and qualified names must come from medley::.
    if (I == 0)
      continue;
    const Token &Prev = T[I - 1];
    if (Prev.K == Token::Punct) {
      if (Prev.Text == "." || Prev.Text == "->" || Prev.Text == "&" ||
          Prev.Text == "*" || Prev.Text == ">")
        continue; // Member call or declarator.
      if (Prev.Text == "::" && !(I >= 2 && C.identAt(I - 2, "medley")))
        continue; // Qualified by a foreign namespace.
    } else if (Prev.K == Token::Ident && Prev.Text != "return") {
      continue; // `Vec add(` — a declaration, not a call.
    } else if (Prev.K != Token::Ident) {
      continue; // Number/string before '(' cannot precede a call.
    }

    C.report(T[I], RuleHotpathAlloc,
             "value-returning linalg call '" + T[I].Text +
                 "(' on the decision hot path allocates a fresh Vec — use "
                 "the allocation-free *Into/span kernel instead");
  }
}

} // namespace

void medley::lint::runRules(const std::string &Path, FileKind Kind,
                            const LexedFile &Lexed,
                            const std::vector<std::string> &SourceLines,
                            std::vector<Finding> &Out) {
  RuleCtx C{Path, Kind, Lexed.Tokens, SourceLines, Out};
  ruleNondeterminism(C);
  ruleUnorderedReduction(C);
  ruleRawConcurrency(C);
  ruleFloatEquality(C);
  ruleErrorCheck(C);
  ruleHotpathAlloc(C);
}
