//===-- tools/medley-lint/Cfg.cpp - Per-function CFG builder -------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the statement-level CFG (DESIGN.md §15). The builder walks a
/// function body's token range recognizing `if`/`else`, the three loop
/// forms, `switch` (with fallthrough), `try`/`catch`, and the jump
/// statements; everything else is a simple statement whose dataflow
/// events (guard construction, local defs/uses, non-local writes,
/// calls, arena resets) are emitted into the current block in token
/// order. Like the indexer it is a heuristic reader: what it cannot
/// model degrades to straight-line code, never a crash.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Cfg.h"
#include "medley-lint/Internal.h"

#include <algorithm>
#include <array>
#include <set>

using namespace medley::lint;

namespace {

using Tokens = std::vector<Token>;

bool punctIs(const Tokens &T, size_t I, const char *Text) {
  return I < T.size() && T[I].K == Token::Punct && T[I].Text == Text;
}

bool identIs(const Tokens &T, size_t I, const char *Text) {
  return I < T.size() && T[I].K == Token::Ident && T[I].Text == Text;
}

template <size_t N>
bool oneOf(const std::string &S, const std::array<const char *, N> &Set) {
  for (const char *E : Set)
    if (S == E)
      return true;
  return false;
}

bool isControlKw(const std::string &S) {
  static const std::array<const char *, 24> Kw = {
      "if",       "for",          "while",     "switch",   "catch",
      "return",   "sizeof",       "alignof",   "alignas",  "decltype",
      "new",      "delete",       "throw",     "else",     "do",
      "case",     "goto",         "template",  "typename", "using",
      "typedef",  "static_assert","noexcept",  "requires"};
  return oneOf(S, Kw);
}

bool precedesCall(const std::string &S) {
  static const std::array<const char *, 5> Kw = {"return", "else", "do",
                                                 "throw", "co_return"};
  return oneOf(S, Kw);
}

bool isGuardType(const std::string &S) {
  static const std::array<const char *, 4> G = {"lock_guard", "scoped_lock",
                                                "unique_lock", "shared_lock"};
  return oneOf(S, G);
}

bool isAssignOp(const std::string &P) {
  static const std::array<const char *, 11> Ops = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  return oneOf(P, Ops);
}

/// Operators that make an expression a boolean/comparison computation:
/// its value is not a stored pointer, so no alias candidates survive.
bool isCompareOp(const std::string &P) {
  static const std::array<const char *, 9> Ops = {"==", "!=", "<=", ">=", "<",
                                                  ">",  "&&", "||", "!"};
  return oneOf(P, Ops);
}

/// Nesting beyond this degrades to straight-line event emission.
constexpr int MaxNest = 64;

/// The builder proper: one instance per function body.
class Builder {
public:
  explicit Builder(const CfgBuildContext &Ctx)
      : Ctx(Ctx), T(*Ctx.Toks), Lines(*Ctx.Lines) {}

  FunctionCfg build(size_t B, size_t E) {
    G.Blocks.emplace_back(); // 0: entry
    G.Blocks.emplace_back(); // 1: exit
    for (const std::string &L : Ctx.SeedLocals)
      Locals.insert(L);
    Cur = newBlock();
    link(G.Entry, Cur);
    GuardScopes.emplace_back();
    walkRange(B, E, 0);
    closeGuardScope();
    link(Cur, G.Exit);
    finalize();
    return std::move(G);
  }

private:
  const CfgBuildContext &Ctx;
  const Tokens &T;
  const std::vector<std::string> &Lines;
  FunctionCfg G;
  unsigned Cur = 0;
  std::set<std::string> Locals;
  std::vector<unsigned> Breaks, Conts;
  std::vector<std::vector<std::string>> GuardScopes;

  //===--------------------------------------------------------------------===//
  // Graph plumbing
  //===--------------------------------------------------------------------===//

  unsigned newBlock() {
    G.Blocks.emplace_back();
    return static_cast<unsigned>(G.Blocks.size() - 1);
  }

  void link(unsigned From, unsigned To) { G.Blocks[From].Succs.push_back(To); }

  void finalize() {
    for (CfgBlock &B : G.Blocks) {
      std::sort(B.Succs.begin(), B.Succs.end());
      B.Succs.erase(std::unique(B.Succs.begin(), B.Succs.end()),
                    B.Succs.end());
    }
    for (unsigned B = 0; B < G.Blocks.size(); ++B)
      for (unsigned S : G.Blocks[B].Succs)
        G.Blocks[S].Preds.push_back(B);
  }

  void push(CfgStmt S) { G.Blocks[Cur].Stmts.push_back(std::move(S)); }

  void fillPos(CfgStmt &S, size_t TokIdx) const {
    if (TokIdx >= T.size())
      return;
    S.Line = T[TokIdx].Line;
    S.Col = T[TokIdx].Col;
    if (S.Line >= 1 && S.Line <= Lines.size())
      S.LineText = trim(Lines[S.Line - 1]);
  }

  //===--------------------------------------------------------------------===//
  // Small text helpers (mirror the indexer's conventions)
  //===--------------------------------------------------------------------===//

  /// `A.B->C` receiver chain ending just before the '.'/'->' at \p DotPos.
  std::string receiverChain(size_t DotPos) const {
    std::string Chain;
    size_t K = DotPos;
    while (K > 0) {
      const Token &P = T[K - 1];
      if (P.K != Token::Ident)
        break;
      Chain = P.Text + Chain;
      --K;
      if (K > 0 && T[K - 1].K == Token::Punct &&
          (T[K - 1].Text == "." || T[K - 1].Text == "->" ||
           T[K - 1].Text == "::")) {
        Chain = T[K - 1].Text + Chain;
        --K;
        continue;
      }
      break;
    }
    return Chain;
  }

  /// Same normalization as the indexer's lockIdFor, so CFG lock/arena
  /// ids agree with the scope-based summaries.
  std::string lockId(std::string Expr) const {
    while (!Expr.empty() && (Expr[0] == '&' || Expr[0] == '*'))
      Expr.erase(Expr.begin());
    bool Simple = Expr.find("::") == std::string::npos &&
                  Expr.find('.') == std::string::npos &&
                  Expr.find("->") == std::string::npos;
    if (Simple && !Ctx.ClassName.empty())
      return Ctx.ClassName + "::" + Expr;
    return Expr;
  }

  static std::string chainBase(const std::string &Chain) {
    for (size_t I = 0; I < Chain.size(); ++I)
      if (Chain[I] == '.' || Chain[I] == '-' || Chain[I] == ':')
        return Chain.substr(0, I);
    return Chain;
  }

  std::vector<std::string> splitArgs(size_t B, size_t E) const {
    std::vector<std::string> Args;
    std::string CurArg;
    int Depth = 0;
    for (size_t I = B; I < E; ++I) {
      const Token &Tok = T[I];
      if (Tok.K == Token::Punct) {
        if (Tok.Text == "(" || Tok.Text == "{" || Tok.Text == "[")
          ++Depth;
        else if (Tok.Text == ")" || Tok.Text == "}" || Tok.Text == "]")
          --Depth;
        else if (Tok.Text == "," && Depth == 0) {
          if (!CurArg.empty())
            Args.push_back(CurArg);
          CurArg.clear();
          continue;
        }
      }
      CurArg += Tok.Text;
    }
    if (!CurArg.empty())
      Args.push_back(CurArg);
    return Args;
  }

  bool inSkipRange(size_t I, size_t &End) const {
    for (const std::pair<size_t, size_t> &R : Ctx.SkipRanges)
      if (I >= R.first && I < R.second) {
        End = R.second;
        return true;
      }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Structure walk
  //===--------------------------------------------------------------------===//

  void walkRange(size_t B, size_t E, int Depth) {
    size_t I = B;
    while (I < E) {
      size_t Next = walkConstruct(I, E, Depth);
      I = Next > I ? Next : I + 1;
    }
  }

  size_t walkConstruct(size_t I, size_t E, int Depth) {
    size_t SkipEnd = 0;
    if (inSkipRange(I, SkipEnd))
      return SkipEnd;
    const Token &Tok = T[I];
    if (Tok.K == Token::Punct) {
      if (Tok.Text == ";")
        return I + 1;
      if (Tok.Text == "{") {
        size_t End = skipBalanced(T, I, "{", "}");
        size_t InnerE = End > I + 1 ? End - 1 : I + 1;
        if (Depth < MaxNest)
          walkScope(I + 1, InnerE, Depth + 1);
        else
          scanEvents(I + 1, InnerE);
        return End;
      }
    }
    if (Tok.K == Token::Ident && Depth < MaxNest) {
      const std::string &S = Tok.Text;
      if (S == "if")
        return walkIf(I, E, Depth);
      if (S == "while")
        return walkWhile(I, E, Depth);
      if (S == "for")
        return walkFor(I, E, Depth);
      if (S == "do")
        return walkDo(I, E, Depth);
      if (S == "switch")
        return walkSwitch(I, E, Depth);
      if (S == "try")
        return I + 1; // the following block walks as a plain scope
      if (S == "catch")
        return walkCatch(I, E, Depth);
      if (S == "return" || S == "co_return") {
        size_t Semi = stmtEnd(I + 1, E);
        emitReturn(I, I + 1, Semi);
        link(Cur, G.Exit);
        Cur = newBlock();
        return Semi < E ? Semi + 1 : E;
      }
      if (S == "break" || S == "continue") {
        const std::vector<unsigned> &Stack = S == "break" ? Breaks : Conts;
        if (!Stack.empty())
          link(Cur, Stack.back());
        Cur = newBlock();
        size_t Semi = stmtEnd(I + 1, E);
        return Semi < E ? Semi + 1 : E;
      }
      if (S == "goto") {
        // An opaque jump: conservatively route to the exit.
        link(Cur, G.Exit);
        Cur = newBlock();
        size_t Semi = stmtEnd(I + 1, E);
        return Semi < E ? Semi + 1 : E;
      }
    }
    size_t Semi = stmtEnd(I, E);
    emitStmt(I, Semi);
    return Semi < E ? Semi + 1 : E;
  }

  /// Index of the statement-terminating ';' at paren/bracket/brace
  /// depth 0 (lambdas and braced initializers stay inside one
  /// statement), or \p E.
  size_t stmtEnd(size_t I, size_t E) const {
    int D = 0;
    for (size_t J = I; J < E; ++J) {
      if (T[J].K != Token::Punct)
        continue;
      const std::string &P = T[J].Text;
      if (P == "(" || P == "[" || P == "{")
        ++D;
      else if (P == ")" || P == "]" || P == "}") {
        if (D == 0)
          return J;
        --D;
      } else if (P == ";" && D == 0)
        return J;
    }
    return E;
  }

  void walkScope(size_t B, size_t E, int Depth) {
    GuardScopes.emplace_back();
    walkRange(B, E, Depth);
    closeGuardScope();
  }

  void closeGuardScope() {
    std::vector<std::string> &Scope = GuardScopes.back();
    for (size_t I = Scope.size(); I-- > 0;) {
      CfgStmt S;
      S.K = CfgStmt::Release;
      S.Id = Scope[I];
      push(std::move(S));
    }
    GuardScopes.pop_back();
  }

  /// A loop/branch body: either a braced scope or a single construct.
  size_t walkStmtOrBlock(size_t I, size_t E, int Depth) {
    if (I >= E)
      return I;
    if (punctIs(T, I, "{")) {
      size_t End = skipBalanced(T, I, "{", "}");
      size_t InnerE = End > I + 1 ? End - 1 : I + 1;
      if (Depth < MaxNest)
        walkScope(I + 1, InnerE, Depth + 1);
      else
        scanEvents(I + 1, InnerE);
      return End;
    }
    return walkConstruct(I, E, Depth + 1);
  }

  size_t walkIf(size_t I, size_t E, int Depth) {
    size_t J = I + 1;
    if (identIs(T, J, "constexpr"))
      ++J;
    if (!punctIs(T, J, "(")) {
      size_t Semi = stmtEnd(I + 1, E);
      return Semi < E ? Semi + 1 : E;
    }
    size_t CondEnd = skipBalanced(T, J, "(", ")");
    emitStmt(J + 1, CondEnd > J + 1 ? CondEnd - 1 : J + 1);
    unsigned CondB = Cur;
    unsigned ThenB = newBlock();
    link(CondB, ThenB);
    Cur = ThenB;
    size_t AfterThen = walkStmtOrBlock(CondEnd, E, Depth);
    unsigned ThenEnd = Cur;
    if (identIs(T, AfterThen, "else")) {
      unsigned ElseB = newBlock();
      link(CondB, ElseB);
      Cur = ElseB;
      size_t AfterElse = walkStmtOrBlock(AfterThen + 1, E, Depth);
      unsigned After = newBlock();
      link(ThenEnd, After);
      link(Cur, After);
      Cur = After;
      return AfterElse;
    }
    unsigned After = newBlock();
    link(ThenEnd, After);
    link(CondB, After);
    Cur = After;
    return AfterThen;
  }

  size_t walkWhile(size_t I, size_t E, int Depth) {
    size_t J = I + 1;
    if (!punctIs(T, J, "(")) {
      size_t Semi = stmtEnd(I + 1, E);
      return Semi < E ? Semi + 1 : E;
    }
    size_t CondEnd = skipBalanced(T, J, "(", ")");
    unsigned Header = newBlock();
    link(Cur, Header);
    Cur = Header;
    emitStmt(J + 1, CondEnd > J + 1 ? CondEnd - 1 : J + 1);
    unsigned Body = newBlock(), After = newBlock();
    link(Header, Body);
    link(Header, After);
    Breaks.push_back(After);
    Conts.push_back(Header);
    Cur = Body;
    size_t End = walkStmtOrBlock(CondEnd, E, Depth);
    link(Cur, Header);
    Breaks.pop_back();
    Conts.pop_back();
    Cur = After;
    return End;
  }

  size_t walkFor(size_t I, size_t E, int Depth) {
    size_t J = I + 1;
    if (!punctIs(T, J, "(")) {
      size_t Semi = stmtEnd(I + 1, E);
      return Semi < E ? Semi + 1 : E;
    }
    size_t ParenEnd = skipBalanced(T, J, "(", ")"); // one past ')'
    size_t PB = J + 1, PE = ParenEnd > J + 1 ? ParenEnd - 1 : J + 1;

    // Range-for: a top-level ':' inside the parens ('::' is one token).
    size_t ColonPos = PE;
    {
      int D = 0;
      for (size_t K = PB; K < PE; ++K) {
        if (T[K].K != Token::Punct)
          continue;
        const std::string &P = T[K].Text;
        if (P == "(" || P == "[" || P == "{")
          ++D;
        else if (P == ")" || P == "]" || P == "}")
          --D;
        else if (P == ":" && D == 0) {
          ColonPos = K;
          break;
        }
      }
    }

    unsigned Header, Body, After;
    if (ColonPos < PE) {
      Header = newBlock();
      link(Cur, Header);
      Cur = Header;
      scanEvents(ColonPos + 1, PE);
      std::string Var;
      size_t VarPos = ColonPos;
      for (size_t K = ColonPos; K-- > PB;)
        if (T[K].K == Token::Ident) {
          Var = T[K].Text;
          VarPos = K;
          break;
        }
      if (!Var.empty()) {
        Locals.insert(Var);
        CfgStmt S;
        S.K = CfgStmt::Def;
        S.Id = Var;
        S.Origin = originOf(ColonPos + 1, PE);
        fillPos(S, VarPos);
        push(std::move(S));
      }
    } else {
      // Classic for: split at the two top-level ';'.
      size_t Semi1 = PE, Semi2 = PE;
      int D = 0;
      for (size_t K = PB; K < PE; ++K) {
        if (T[K].K != Token::Punct)
          continue;
        const std::string &P = T[K].Text;
        if (P == "(" || P == "[" || P == "{")
          ++D;
        else if (P == ")" || P == "]" || P == "}")
          --D;
        else if (P == ";" && D == 0) {
          if (Semi1 == PE)
            Semi1 = K;
          else if (Semi2 == PE) {
            Semi2 = K;
            break;
          }
        }
      }
      if (Semi1 < PE)
        emitStmt(PB, Semi1); // init, in the pre-header block
      Header = newBlock();
      link(Cur, Header);
      Cur = Header;
      if (Semi2 > Semi1 && Semi1 < PE)
        emitStmt(Semi1 + 1, Semi2 < PE ? Semi2 : PE);
      // Increment events are emitted at the body's exit, before the
      // back edge; `continue` jumps to the header and skips them — an
      // accepted approximation.
      Body = newBlock();
      After = newBlock();
      link(Header, Body);
      link(Header, After);
      Breaks.push_back(After);
      Conts.push_back(Header);
      Cur = Body;
      size_t End = walkStmtOrBlock(ParenEnd, E, Depth);
      if (Semi2 < PE && Semi2 + 1 < PE)
        emitStmt(Semi2 + 1, PE);
      link(Cur, Header);
      Breaks.pop_back();
      Conts.pop_back();
      Cur = After;
      return End;
    }

    Body = newBlock();
    After = newBlock();
    link(Header, Body);
    link(Header, After);
    Breaks.push_back(After);
    Conts.push_back(Header);
    Cur = Body;
    size_t End = walkStmtOrBlock(ParenEnd, E, Depth);
    link(Cur, Header);
    Breaks.pop_back();
    Conts.pop_back();
    Cur = After;
    return End;
  }

  size_t walkDo(size_t I, size_t E, int Depth) {
    unsigned Body = newBlock();
    link(Cur, Body);
    unsigned CondB = newBlock(), After = newBlock();
    Breaks.push_back(After);
    Conts.push_back(CondB);
    Cur = Body;
    size_t AfterBody = walkStmtOrBlock(I + 1, E, Depth);
    link(Cur, CondB);
    Breaks.pop_back();
    Conts.pop_back();
    Cur = CondB;
    if (identIs(T, AfterBody, "while") && punctIs(T, AfterBody + 1, "(")) {
      size_t CondEnd = skipBalanced(T, AfterBody + 1, "(", ")");
      emitStmt(AfterBody + 2, CondEnd > AfterBody + 2 ? CondEnd - 1
                                                      : AfterBody + 2);
      link(CondB, Body);
      link(CondB, After);
      Cur = After;
      return punctIs(T, CondEnd, ";") ? CondEnd + 1 : CondEnd;
    }
    link(CondB, After);
    Cur = After;
    return AfterBody;
  }

  size_t walkSwitch(size_t I, size_t E, int Depth) {
    size_t J = I + 1;
    if (!punctIs(T, J, "(")) {
      size_t Semi = stmtEnd(I + 1, E);
      return Semi < E ? Semi + 1 : E;
    }
    size_t CondEnd = skipBalanced(T, J, "(", ")");
    emitStmt(J + 1, CondEnd > J + 1 ? CondEnd - 1 : J + 1);
    unsigned Head = Cur;
    if (!punctIs(T, CondEnd, "{"))
      return CondEnd;
    size_t BodyEnd = skipBalanced(T, CondEnd, "{", "}");
    size_t BB = CondEnd + 1, BE = BodyEnd > CondEnd + 1 ? BodyEnd - 1 : BB;
    unsigned After = newBlock();
    Breaks.push_back(After);

    // Label positions at brace/paren depth 0: (label token, content start).
    std::vector<std::pair<size_t, size_t>> Labels;
    {
      int D = 0;
      for (size_t K = BB; K < BE; ++K) {
        if (T[K].K == Token::Punct) {
          const std::string &P = T[K].Text;
          if (P == "(" || P == "[" || P == "{")
            ++D;
          else if (P == ")" || P == "]" || P == "}")
            --D;
          continue;
        }
        if (D != 0 || T[K].K != Token::Ident ||
            (T[K].Text != "case" && T[K].Text != "default"))
          continue;
        size_t C = K + 1;
        int D2 = 0;
        while (C < BE) {
          if (T[C].K == Token::Punct) {
            const std::string &P = T[C].Text;
            if (P == "(" || P == "[" || P == "{")
              ++D2;
            else if (P == ")" || P == "]" || P == "}")
              --D2;
            else if (P == ":" && D2 == 0)
              break;
          }
          ++C;
        }
        Labels.push_back({K, C < BE ? C + 1 : K + 1});
        K = C < BE ? C : K;
      }
    }

    if (Labels.empty()) {
      // Degenerate: no labels, treat the body as a conditional region.
      unsigned Seg = newBlock();
      link(Head, Seg);
      Cur = Seg;
      walkRange(BB, BE, Depth + 1);
      link(Cur, After);
    } else {
      Cur = newBlock(); // unreachable pre-label code, if any
      if (Labels.front().first > BB)
        walkRange(BB, Labels.front().first, Depth + 1);
      for (size_t L = 0; L < Labels.size(); ++L) {
        unsigned Seg = newBlock();
        link(Head, Seg);
        link(Cur, Seg); // fallthrough from the previous segment
        Cur = Seg;
        size_t SegEnd = L + 1 < Labels.size() ? Labels[L + 1].first : BE;
        walkRange(Labels[L].second, SegEnd, Depth + 1);
      }
      link(Cur, After);
    }
    link(Head, After); // no matching label / no default
    Breaks.pop_back();
    Cur = After;
    return BodyEnd;
  }

  size_t walkCatch(size_t I, size_t E, int Depth) {
    size_t J = I + 1;
    if (!punctIs(T, J, "("))
      return I + 1;
    size_t ParenEnd = skipBalanced(T, J, "(", ")");
    for (size_t K = ParenEnd > J + 1 ? ParenEnd - 1 : J + 1; K-- > J + 1;)
      if (T[K].K == Token::Ident) {
        Locals.insert(T[K].Text);
        break;
      }
    unsigned Pre = Cur;
    unsigned Handler = newBlock();
    link(Pre, Handler);
    Cur = Handler;
    size_t End = walkStmtOrBlock(ParenEnd, E, Depth);
    unsigned Merge = newBlock();
    link(Cur, Merge);
    link(Pre, Merge);
    Cur = Merge;
    return End;
  }

  //===--------------------------------------------------------------------===//
  // Statement emission
  //===--------------------------------------------------------------------===//

  /// The backward-parsed lvalue chain to the left of an assignment.
  struct LhsChain {
    std::vector<std::string> Comps; ///< Base-first components.
    std::vector<std::string> Seps;  ///< "." / "->" between components.
    bool Deref = false;             ///< Leading '*'.
    bool Subscript = false;         ///< Any `[...]` in the chain.
    size_t StartTok = 0;            ///< Token index of the base component.
    bool Valid = false;
  };

  LhsChain parseLhsChain(size_t B, size_t AssignPos) const {
    LhsChain C;
    std::vector<std::string> RevComps, RevSeps;
    size_t K = AssignPos;
    bool Ok = true;
    while (true) {
      while (K > B && punctIs(T, K - 1, "]")) {
        int D = 0;
        size_t M = K;
        bool Found = false;
        while (M > B) {
          --M;
          if (punctIs(T, M, "]"))
            ++D;
          else if (punctIs(T, M, "[") && --D == 0) {
            Found = true;
            break;
          }
        }
        if (!Found) {
          Ok = false;
          break;
        }
        C.Subscript = true;
        K = M;
      }
      if (!Ok)
        break;
      if (K > B && T[K - 1].K == Token::Ident) {
        RevComps.push_back(T[K - 1].Text);
        --K;
      } else {
        if (RevComps.empty())
          Ok = false;
        break;
      }
      if (K > B && (punctIs(T, K - 1, ".") || punctIs(T, K - 1, "->"))) {
        RevSeps.push_back(T[K - 1].Text);
        --K;
        continue;
      }
      break;
    }
    if (!Ok || RevComps.empty())
      return C;
    C.Comps.assign(RevComps.rbegin(), RevComps.rend());
    C.Seps.assign(RevSeps.rbegin(), RevSeps.rend());
    C.StartTok = K;
    C.Deref = K > B && punctIs(T, K - 1, "*");
    C.Valid = true;
    return C;
  }

  std::string chainText(const LhsChain &C) const {
    std::string Out = C.Comps.front();
    for (size_t I = 0; I + 1 < C.Comps.size(); ++I)
      Out += C.Seps[I] + C.Comps[I + 1];
    return Out;
  }

  /// True when [B, K) reads as a type prefix (a declaration), i.e. it
  /// contains at least one identifier token.
  bool looksLikeTypePrefix(size_t B, size_t K) const {
    for (size_t I = B; I < K; ++I)
      if (T[I].K == Token::Ident)
        return true;
    return false;
  }

  size_t findAssign(size_t B, size_t E) const {
    int D = 0;
    for (size_t J = B; J < E; ++J) {
      if (T[J].K != Token::Punct)
        continue;
      const std::string &P = T[J].Text;
      if (P == "(" || P == "[" || P == "{")
        ++D;
      else if (P == ")" || P == "]" || P == "}")
        --D;
      else if (D == 0 && isAssignOp(P))
        return J;
    }
    return E;
  }

  /// Emits one simple statement's events into the current block:
  /// scan-order uses/calls/locks first, then the defining Def/Write.
  void emitStmt(size_t B, size_t E) {
    while (B < E && punctIs(T, B, ";"))
      ++B;
    if (B >= E)
      return;
    if (identIs(T, B, "return")) {
      emitReturn(B, B + 1, E);
      link(Cur, G.Exit);
      Cur = newBlock();
      return;
    }
    if (tryGuardDecl(B, E))
      return;

    size_t AssignPos = findAssign(B, E);
    if (AssignPos >= E) {
      scanEvents(B, E);
      findPlainDecl(B, E);
      return;
    }

    LhsChain C = parseLhsChain(B, AssignPos);
    if (!C.Valid) {
      scanEvents(B, E);
      return;
    }
    bool Compound = !punctIs(T, AssignPos, "=");
    bool IsDecl = C.Comps.size() == 1 && !C.Subscript &&
                  looksLikeTypePrefix(B, C.StartTok);
    bool LocalBase = Locals.count(C.Comps.front()) > 0;

    if (C.Comps.size() == 1 && C.Comps.front() == "auto" && C.Subscript) {
      // Structured binding `auto [A, B] = rhs;` — every bound name is a
      // fresh local; none of them is a field/global write.
      scanEvents(AssignPos + 1, E);
      std::vector<std::string> Aliases = aliasCandidates(AssignPos + 1, E);
      std::string Origin = originOf(AssignPos + 1, E);
      for (size_t I = C.StartTok; I + 1 < AssignPos; ++I) {
        if (!punctIs(T, I, "["))
          continue;
        for (size_t J = I + 1; J < AssignPos && !punctIs(T, J, "]"); ++J)
          if (T[J].K == Token::Ident) {
            Locals.insert(T[J].Text);
            CfgStmt S;
            S.K = CfgStmt::Def;
            S.Id = T[J].Text;
            S.Origin = Origin;
            S.Aliases = Aliases;
            fillPos(S, J);
            push(std::move(S));
          }
        break;
      }
      return;
    }

    if (IsDecl) {
      // `Type Name = rhs;` — the prefix and name are not uses.
      scanEvents(AssignPos + 1, E);
      Locals.insert(C.Comps.front());
      CfgStmt S;
      S.K = CfgStmt::Def;
      S.Id = C.Comps.front();
      S.Origin = originOf(AssignPos + 1, E);
      S.Aliases = aliasCandidates(AssignPos + 1, E);
      fillPos(S, C.StartTok);
      push(std::move(S));
      return;
    }

    if (LocalBase && C.Comps.size() == 1 && !C.Subscript && !C.Deref) {
      // Local rebind. A pure `=` kills the old value, so the name on
      // the left is not a use; compound forms read it first.
      if (Compound)
        scanEvents(B, E);
      else
        scanEvents(B, E, C.StartTok, AssignPos);
      CfgStmt S;
      S.K = CfgStmt::Def;
      S.Id = C.Comps.front();
      S.Origin = originOf(AssignPos + 1, E);
      S.Aliases = aliasCandidates(AssignPos + 1, E);
      if (Compound)
        S.Aliases.push_back(S.Id); // pointer arithmetic keeps the origin
      std::sort(S.Aliases.begin(), S.Aliases.end());
      S.Aliases.erase(std::unique(S.Aliases.begin(), S.Aliases.end()),
                      S.Aliases.end());
      fillPos(S, C.StartTok);
      push(std::move(S));
      return;
    }

    scanEvents(B, E);
    if (!LocalBase && !C.Deref) {
      // A write through a field/global candidate lvalue.
      CfgStmt S;
      S.K = CfgStmt::Write;
      S.Id = chainText(C);
      S.Base = C.Comps.size() > 1 ? C.Comps.front() : "";
      S.Last = C.Comps.back();
      S.Aliases = aliasCandidates(AssignPos + 1, E);
      fillPos(S, C.StartTok);
      push(std::move(S));
    }
  }

  /// `std::lock_guard<std::mutex> G(Mu);` and friends: declares the
  /// guard local, acquires its lock(s), registers scope-end release.
  bool tryGuardDecl(size_t B, size_t E) {
    size_t I = B;
    while (I + 1 < E && T[I].K == Token::Ident && punctIs(T, I + 1, "::"))
      I += 2;
    if (I >= E || T[I].K != Token::Ident || !isGuardType(T[I].Text))
      return false;
    bool Scoped = T[I].Text == "scoped_lock";
    size_t J = I + 1;
    if (punctIs(T, J, "<"))
      J = skipTemplateArgs(T, J);
    if (J >= E || T[J].K != Token::Ident)
      return false;
    std::string Var = T[J].Text;
    size_t Open = J + 1;
    bool Paren = punctIs(T, Open, "(");
    if (!Paren && !punctIs(T, Open, "{"))
      return false;
    size_t ArgsEnd = Paren ? skipBalanced(T, Open, "(", ")")
                           : skipBalanced(T, Open, "{", "}");
    Locals.insert(Var);
    std::vector<std::string> Args =
        splitArgs(Open + 1, ArgsEnd > Open + 1 ? ArgsEnd - 1 : Open + 1);
    std::vector<std::string> LockArgs;
    for (const std::string &A : Args) {
      if (A.find("defer_lock") != std::string::npos)
        return true; // declared unlocked; a later .lock() acquires
      if (A.find("adopt_lock") != std::string::npos ||
          A.find("try_to_lock") != std::string::npos)
        continue;
      LockArgs.push_back(A);
    }
    if (!Scoped && LockArgs.size() > 1)
      LockArgs.resize(1);
    for (const std::string &A : LockArgs) {
      std::string Id = lockId(A);
      CfgStmt S;
      S.K = CfgStmt::Acquire;
      S.Id = Id;
      fillPos(S, I);
      push(std::move(S));
      GuardScopes.back().push_back(std::move(Id));
    }
    return true;
  }

  /// `Type Name(args);` / `Type Name{args};` / `Type Name;` without an
  /// '=': declares a local. Returns true when a declaration was found.
  bool findPlainDecl(size_t B, size_t E) {
    int D = 0;
    for (size_t J = B; J < E; ++J) {
      if (T[J].K == Token::Punct) {
        const std::string &P = T[J].Text;
        if (P == "(" || P == "[" || P == "{")
          ++D;
        else if (P == ")" || P == "]" || P == "}")
          --D;
        continue;
      }
      if (D != 0 || T[J].K != Token::Ident || J == B)
        continue;
      bool NextOk = J + 1 >= E || punctIs(T, J + 1, "(") ||
                    punctIs(T, J + 1, "{");
      if (!NextOk)
        continue;
      const Token &P = T[J - 1];
      bool PrevOk = (P.K == Token::Ident && !isControlKw(P.Text)) ||
                    (P.K == Token::Punct &&
                     (P.Text == "*" || P.Text == "&" || P.Text == ">"));
      if (!PrevOk)
        continue;
      CfgStmt S;
      S.K = CfgStmt::Def;
      S.Id = T[J].Text;
      if (J + 1 < E) {
        size_t ArgsEnd = punctIs(T, J + 1, "(")
                             ? skipBalanced(T, J + 1, "(", ")")
                             : skipBalanced(T, J + 1, "{", "}");
        size_t AB = J + 2, AE = ArgsEnd > J + 2 ? ArgsEnd - 1 : J + 2;
        S.Origin = originOf(AB, AE);
        S.Aliases = aliasCandidates(AB, AE);
      }
      Locals.insert(S.Id);
      fillPos(S, J);
      push(std::move(S));
      return true;
    }
    return false;
  }

  void emitReturn(size_t RetTok, size_t B, size_t E) {
    scanEvents(B, E);
    CfgStmt S;
    S.K = CfgStmt::Ret;
    S.Origin = originOf(B, E);
    S.Aliases = aliasCandidates(B, E);
    fillPos(S, RetTok);
    push(std::move(S));
  }

  //===--------------------------------------------------------------------===//
  // Event scan (phase A of a statement)
  //===--------------------------------------------------------------------===//

  /// Emits Use/Call/Acquire/Release/ArenaReset/inc-dec-Write events in
  /// token order over [B, E), skipping extracted lambda ranges and the
  /// optional exclusion range [ExB, ExE).
  void scanEvents(size_t B, size_t E, size_t ExB = 0, size_t ExE = 0) {
    for (size_t I = B; I < E; ++I) {
      if (I >= ExB && I < ExE)
        continue;
      size_t SkipEnd = 0;
      if (inSkipRange(I, SkipEnd)) {
        I = SkipEnd - 1;
        continue;
      }
      const Token &Tok = T[I];
      if (Tok.K == Token::Punct) {
        if (Tok.Text == "++" || Tok.Text == "--")
          handleIncDec(I, B, E);
        continue;
      }
      if (Tok.K != Token::Ident)
        continue;
      bool PrevDot =
          I > B && (punctIs(T, I - 1, ".") || punctIs(T, I - 1, "->"));
      bool PrevColon = I > B && punctIs(T, I - 1, "::");
      size_t AfterName = I + 1;
      if (punctIs(T, AfterName, "<")) {
        size_t Skip = skipTemplateArgs(T, AfterName);
        if (Skip > AfterName + 1 && punctIs(T, Skip, "("))
          AfterName = Skip;
      }
      if (punctIs(T, AfterName, "(")) {
        if (PrevDot) {
          memberCall(I, AfterName);
          continue;
        }
        if (isControlKw(Tok.Text))
          continue;
        // `Vec add(` — an identifier (that cannot precede a call) or a
        // closing '>' before the name means a declarator, not a call.
        if (I > B && T[I - 1].K == Token::Ident && !precedesCall(T[I - 1].Text))
          continue;
        if (I > B && punctIs(T, I - 1, ">"))
          continue;
        std::string Qual;
        size_t Back = I;
        while (Back >= B + 2 && punctIs(T, Back - 1, "::") &&
               T[Back - 2].K == Token::Ident) {
          Qual = T[Back - 2].Text + (Qual.empty() ? "" : "::" + Qual);
          Back -= 2;
        }
        CfgStmt S;
        S.K = CfgStmt::Call;
        S.Id = Tok.Text;
        S.Qual = Qual;
        S.Member = false;
        S.LocalRecv = Qual.empty() && Locals.count(Tok.Text) > 0;
        fillPos(S, I);
        push(std::move(S));
        continue;
      }
      if (!PrevDot && !PrevColon && !punctIs(T, I + 1, "::") &&
          Locals.count(Tok.Text)) {
        CfgStmt S;
        S.K = CfgStmt::Use;
        S.Id = Tok.Text;
        fillPos(S, I);
        push(std::move(S));
      }
    }
  }

  void memberCall(size_t NameIdx, size_t ParenIdx) {
    std::string Recv = receiverChain(NameIdx - 1);
    const std::string &Name = T[NameIdx].Text;
    size_t ArgsEnd = skipBalanced(T, ParenIdx, "(", ")");
    bool NoArgs = ArgsEnd == ParenIdx + 2;
    if (Name == "lock" && NoArgs) {
      CfgStmt S;
      S.K = CfgStmt::Acquire;
      S.Id = lockId(Recv);
      fillPos(S, NameIdx);
      push(std::move(S));
      return;
    }
    if (Name == "unlock" && NoArgs) {
      CfgStmt S;
      S.K = CfgStmt::Release;
      S.Id = lockId(Recv);
      fillPos(S, NameIdx);
      push(std::move(S));
      return;
    }
    if (Name == "reset" && NoArgs && !Recv.empty()) {
      CfgStmt S;
      S.K = CfgStmt::ArenaReset;
      S.Id = lockId(Recv);
      fillPos(S, NameIdx);
      push(std::move(S));
      return;
    }
    CfgStmt S;
    S.K = CfgStmt::Call;
    S.Id = Name;
    S.Member = true;
    S.LocalRecv = Locals.count(chainBase(Recv)) > 0;
    fillPos(S, NameIdx);
    push(std::move(S));
  }

  /// `++Chain` / `Chain++`: a Write when the chain base is non-local.
  void handleIncDec(size_t OpIdx, size_t B, size_t E) {
    // Postfix: a chain ends just before the operator.
    if (OpIdx > B &&
        (T[OpIdx - 1].K == Token::Ident || punctIs(T, OpIdx - 1, "]"))) {
      LhsChain C = parseLhsChain(B, OpIdx);
      if (C.Valid && !C.Deref && !Locals.count(C.Comps.front()))
        pushIncDecWrite(C);
      return;
    }
    // Prefix: a chain starts right after the operator.
    size_t K = OpIdx + 1;
    if (K >= E || T[K].K != Token::Ident)
      return;
    LhsChain C;
    C.StartTok = K;
    C.Comps.push_back(T[K].Text);
    ++K;
    while (K + 1 < E && (punctIs(T, K, ".") || punctIs(T, K, "->")) &&
           T[K + 1].K == Token::Ident) {
      C.Seps.push_back(T[K].Text);
      C.Comps.push_back(T[K + 1].Text);
      K += 2;
    }
    C.Valid = true;
    if (!Locals.count(C.Comps.front()))
      pushIncDecWrite(C);
  }

  void pushIncDecWrite(const LhsChain &C) {
    CfgStmt S;
    S.K = CfgStmt::Write;
    S.Id = chainText(C);
    S.Base = C.Comps.size() > 1 ? C.Comps.front() : "";
    S.Last = C.Comps.back();
    fillPos(S, C.StartTok);
    push(std::move(S));
  }

  //===--------------------------------------------------------------------===//
  // Expression classification (phase B inputs)
  //===--------------------------------------------------------------------===//

  /// Direct tracked origin of an expression: an `.acquire(` call or an
  /// `.allocateArray<T>(` call anywhere inside it.
  std::string originOf(size_t B, size_t E) const {
    for (size_t I = B; I < E; ++I) {
      if (T[I].K != Token::Ident)
        continue;
      bool PrevDot =
          I > B && (punctIs(T, I - 1, ".") || punctIs(T, I - 1, "->"));
      if (!PrevDot)
        continue;
      if (T[I].Text == "acquire" && punctIs(T, I + 1, "("))
        return "acquire";
      if (T[I].Text == "allocateArray") {
        size_t A = I + 1;
        if (punctIs(T, A, "<"))
          A = skipTemplateArgs(T, A);
        if (punctIs(T, A, "("))
          return "arena:" + lockId(receiverChain(I - 1));
      }
    }
    return "";
  }

  /// Locals whose pointer value the expression may preserve: bare
  /// mentions, `&X`, and `X...get()` chains. Any top-level comparison
  /// or boolean operator means the value is a predicate, not a pointer.
  std::vector<std::string> aliasCandidates(size_t B, size_t E) const {
    int D = 0;
    for (size_t I = B; I < E; ++I) {
      if (T[I].K != Token::Punct)
        continue;
      const std::string &P = T[I].Text;
      if (P == "(" || P == "[" || P == "{")
        ++D;
      else if (P == ")" || P == "]" || P == "}")
        --D;
      else if (D == 0 && isCompareOp(P))
        return {};
    }
    std::vector<std::string> Out;
    for (size_t I = B; I < E; ++I) {
      if (T[I].K != Token::Ident || !Locals.count(T[I].Text))
        continue;
      if (I > B && (punctIs(T, I - 1, ".") || punctIs(T, I - 1, "->") ||
                    punctIs(T, I - 1, "::")))
        continue;
      if (punctIs(T, I + 1, "::"))
        continue;
      bool Amp = I > B && punctIs(T, I - 1, "&");
      bool Chained = punctIs(T, I + 1, ".") || punctIs(T, I + 1, "->") ||
                     punctIs(T, I + 1, "[");
      if (!Chained || Amp) {
        Out.push_back(T[I].Text);
        continue;
      }
      // Walk the member chain: `X->A.get()` preserves X's pointee.
      size_t K = I + 1;
      std::string LastComp;
      while (K + 1 < E && (punctIs(T, K, ".") || punctIs(T, K, "->")) &&
             T[K + 1].K == Token::Ident) {
        LastComp = T[K + 1].Text;
        K += 2;
      }
      if (LastComp == "get" && punctIs(T, K, "("))
        Out.push_back(T[I].Text);
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }
};

} // namespace

FunctionCfg medley::lint::buildFunctionCfg(size_t BodyBegin, size_t BodyEnd,
                                           const CfgBuildContext &Ctx) {
  if (!Ctx.Toks || !Ctx.Lines)
    return FunctionCfg();
  Builder B(Ctx);
  return B.build(BodyBegin, BodyEnd);
}

std::vector<std::string>
medley::lint::collectParamNames(const std::vector<Token> &Toks, size_t B,
                                size_t E) {
  std::vector<std::string> Out;
  auto Flush = [&](size_t PB, size_t PE) {
    // Truncate at a top-level '=' (default argument).
    int D = 0;
    for (size_t I = PB; I < PE; ++I) {
      if (Toks[I].K != Token::Punct)
        continue;
      const std::string &P = Toks[I].Text;
      if (P == "(" || P == "[" || P == "{")
        ++D;
      else if (P == ")" || P == "]" || P == "}")
        --D;
      else if (P == "=" && D == 0) {
        PE = I;
        break;
      }
    }
    for (size_t K = PE; K-- > PB;) {
      if (Toks[K].K != Token::Ident)
        continue;
      if (K + 1 < PE && (punctIs(Toks, K + 1, "::") || punctIs(Toks, K + 1, "<")))
        continue;
      Out.push_back(Toks[K].Text);
      return;
    }
  };
  int D = 0;
  size_t PartB = B;
  for (size_t I = B; I < E; ++I) {
    if (Toks[I].K == Token::Ident && punctIs(Toks, I + 1, "<")) {
      size_t Skip = skipTemplateArgs(Toks, I + 1);
      if (Skip > I + 2) {
        I = Skip - 1;
        continue;
      }
    }
    if (Toks[I].K != Token::Punct)
      continue;
    const std::string &P = Toks[I].Text;
    if (P == "(" || P == "[" || P == "{")
      ++D;
    else if (P == ")" || P == "]" || P == "}")
      --D;
    else if (P == "," && D == 0) {
      if (I > PartB)
        Flush(PartB, I);
      PartB = I + 1;
    }
  }
  if (E > PartB)
    Flush(PartB, E);
  return Out;
}
