//===-- tools/medley-lint/CallGraph.h - Linked project graph ----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 2 linking (DESIGN.md §12): per-file FileIndexes merge into one
/// whole-project call graph. Nodes are qualified names without
/// signatures — overloads collapse onto one node, which over-
/// approximates reachability in exactly the direction the analyses
/// want. Call resolution is name-based:
///
///   - `obj.f(...)` resolves to every method named `f` (a cheap stand-in
///     for virtual dispatch);
///   - `ns::f(...)` resolves to nodes whose qualified name ends in the
///     written suffix;
///   - a bare `f(...)` resolves to same-named methods of the caller's
///     own class plus every free function named `f`.
///
/// Linking is deterministic: indexes are processed in sorted path
/// order and nodes are sorted by qualified name, so the graph (and
/// `--graph-json`) is byte-identical at any `--jobs`.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_CALLGRAPH_H
#define MEDLEY_TOOLS_LINT_CALLGRAPH_H

#include "medley-lint/Index.h"

namespace medley::lint {

/// The linked whole-project graph.
struct CallGraph {
  /// One source file contributing definitions, with its allow coverage
  /// so phase-2 findings honour annotations without re-reading sources.
  struct FileRef {
    std::string Path;
    FileKind Kind = FileKind::Other;
    std::map<unsigned, std::set<std::string>> AllowLines;
  };

  /// One function (all overloads, all defining files merged). Site
  /// lists carry the id of the file each site came from.
  struct Node {
    std::string Qual;
    std::string Name;
    std::string Class;
    size_t FileId = 0; ///< First defining file (sorted order).
    unsigned Line = 0;
    unsigned Col = 0;
    std::string LineText;
    bool HasSource = false;
    /// True when this node is a lambda body handed to a thread-spawning
    /// call — an L10 root.
    bool IsThreadBody = false;
    std::vector<std::pair<CallSite, size_t>> Calls;
    std::vector<std::pair<AllocSite, size_t>> Allocs;
    std::vector<std::pair<LockAcq, size_t>> Acquires;
    std::vector<std::pair<LockEdge, size_t>> LockEdges;
    std::vector<TaintFlow> Flows;
    std::vector<std::pair<SinkUse, size_t>> Sinks;
    // Flow-sensitive summaries (DESIGN.md §15).
    std::vector<std::pair<UnguardedWrite, size_t>> Writes;
    std::vector<std::pair<RetentionSite, size_t>> Retentions;
    std::vector<FlowCall> FlowCalls;
    std::vector<std::string> ResetArenas;
    std::vector<std::string> SpawnedBodies; ///< Quals of spawned lambdas.
  };

  std::vector<FileRef> Files;
  std::vector<Node> Nodes; ///< Sorted by Qual.
  std::map<std::string, size_t> ByQual;
  std::multimap<std::string, size_t> ByName; ///< Unqualified name → node.
  /// Union of resolved callees per node, sorted and de-duplicated.
  /// Includes explicit parent → spawned-lambda edges.
  std::vector<std::vector<size_t>> Edges;
  /// Declared fields and namespace-scope globals, merged across files:
  /// (class-or-empty, name) → declaration with atomicity ORed over every
  /// sighting, so one atomic declaration anywhere wins.
  std::map<std::pair<std::string, std::string>, FieldDecl> Fields;

  /// True when rules named in an allow annotation cover \p Line of
  /// \p FileId ("all" counts).
  bool allowedAt(size_t FileId, unsigned Line, const std::string &Rule) const;
};

/// Links \p Indexes (any order; sorted internally by path) into a graph.
CallGraph linkCallGraph(const std::vector<FileIndex> &Indexes);

/// Node ids a single call site can reach, sorted. Implements the
/// resolution rules above.
std::vector<size_t> resolveCall(const CallGraph &G, const CallGraph::Node &From,
                                const CallSite &CS);

/// The graph as pretty-printed JSON for external tooling: nodes sorted
/// by qualified name with their defining file, direct allocation-site
/// count, entropy-source flag, and resolved callee list. Stable across
/// runs and `--jobs` values.
std::string renderGraphJson(const CallGraph &G);

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_CALLGRAPH_H
