//===-- tools/medley-lint/Index.h - Per-file symbol index -------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 1 of the semantic analyzer (DESIGN.md §12): one pass over a
/// translation unit's token stream producing a FileIndex — every
/// function/method definition with its qualified name, and per function
/// the call sites, allocation sites, lock acquisitions and acquisition
/// orderings, and the assignment/return/sink "flows" the determinism
/// taint analysis consumes. FileIndexes are cheap, position-independent
/// values: they serialize into the incremental cache and link into the
/// whole-project CallGraph without re-reading sources.
///
/// Like the token rules, the indexer is a heuristic C++ reader, not a
/// front end: templated call names (`f<T>(..)`) and exotic declarator
/// forms are simply not indexed, which under-approximates the graph but
/// never crashes and keeps the whole-tree pass sub-second.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_TOOLS_LINT_INDEX_H
#define MEDLEY_TOOLS_LINT_INDEX_H

#include "medley-lint/Lint.h"

namespace medley::lint {

/// One call site inside a function body.
struct CallSite {
  std::string Name;      ///< Unqualified callee name.
  std::string Qualifier; ///< Explicit qualifier as written ("std",
                         ///< "medley::linalg"), empty when unqualified.
  bool IsMember = false; ///< `x.f(...)` / `x->f(...)`.
  unsigned Line = 0;
  unsigned Col = 0;
  /// Locks held at this call site (lock-order analysis); empty for the
  /// overwhelmingly common unlocked call.
  std::vector<std::string> HeldLocks;
  /// Trimmed source line, filled only when HeldLocks is non-empty (the
  /// only case that can become a finding and needs a baseline key).
  std::string LineText;
};

/// One site that allocates on the heap: new-expressions, malloc-family
/// and make_unique/make_shared calls, container growth members
/// (push_back/insert/...), std::to_string, and the value-returning
/// linalg helpers (add/sub/scale/hadamard). resize/reserve are
/// deliberately NOT allocation sites: sizing a reused scratch buffer to
/// a sticky capacity is the sanctioned hot-path idiom (DESIGN.md §11)
/// and is gated empirically by bench_hotpath_decision's allocation
/// counter instead.
struct AllocSite {
  std::string What; ///< Human label, e.g. "container growth 'push_back'".
  unsigned Line = 0;
  unsigned Col = 0;
  std::string LineText; ///< Trimmed source line (baseline key).
};

/// A lock this function acquires (lock_guard/scoped_lock/unique_lock
/// construction or a raw `.lock()`).
struct LockAcq {
  std::string Name; ///< Normalized lock id, see lockIdFor().
  unsigned Line = 0;
};

/// `Second` acquired while `First` was held, inside one function.
struct LockEdge {
  std::string First;
  std::string Second;
  unsigned Line = 0;    ///< Acquisition site of Second.
  std::string LineText; ///< Trimmed source line at that site.
};

/// One taint flow: `Lhs = f(RhsVars, RhsCalls)` for assignments and
/// initializations, or a return statement when Lhs is "<return>".
struct TaintFlow {
  std::string Lhs;
  std::vector<std::string> RhsVars;
  std::vector<std::string> RhsCalls;
  bool HasSource = false; ///< An entropy/wall-clock source in the rhs.
  unsigned Line = 0;
};

/// A value reaching a determinism-sensitive sink: RNG seeding
/// (seed/srand/engine constructors) or trace/stream output. Flagged by
/// L9 when the argument expression is tainted.
struct SinkUse {
  std::string Sink; ///< "seed", "srand", "Rng", "stream output", ...
  std::vector<std::string> ArgVars;
  std::vector<std::string> ArgCalls;
  bool HasSource = false;
  unsigned Line = 0;
  unsigned Col = 0;
  std::string LineText; ///< Trimmed source line (baseline key).
};

/// One instance-field or file-scope global declaration. The flow rules
/// (L10–L12) resolve written names against this table to decide whether
/// an lvalue is shared state, and whether its type already provides the
/// required synchronization.
struct FieldDecl {
  std::string Class; ///< Declaring class; empty for file-scope globals.
  std::string Name;
  bool Atomic = false; ///< std::atomic<...> / atomic_* typed.
  bool Mutex = false;  ///< mutex / condition_variable — lock state.
};

/// A field/global candidate written with an empty must-held lock set on
/// some path through the function (L10's per-function summary). Writes
/// provably under a lock on every path are not summarized at all.
struct UnguardedWrite {
  std::string Lhs;  ///< Full written chain as written ("Stats->Torn").
  std::string Base; ///< Chain base: "this", an ident, or "" (bare name).
  std::string Last; ///< Written component — the field candidate.
  unsigned Line = 0;
  unsigned Col = 0;
  std::string LineText; ///< Trimmed source line (baseline key).
};

/// One lifetime event for a tracked pointer: a registry-snapshot
/// (`acquire`) or arena (`allocateArray`) result that is stored past its
/// scope, returned, used after a reset, or live across a call. L11/L12
/// decide which events are violations using whole-program facts.
struct RetentionSite {
  enum Kind {
    StoreTo = 0,       ///< Stored through a non-local lvalue.
    ReturnFrom = 1,    ///< Returned out of the defining function.
    UseAfterReset = 2, ///< Used after a matching Arena::reset on a path.
    AcrossCall = 3,    ///< Live across a call site.
  };
  int K = StoreTo;
  std::string Var;        ///< Tracked local ("<result>" for direct returns).
  std::string Origin;     ///< "acquire" or "arena:<normalized id>".
  std::string Base;       ///< StoreTo: destination chain base.
  std::string Last;       ///< StoreTo: destination last component.
  std::string Callee;     ///< AcrossCall: callee name.
  std::string CalleeQual; ///< AcrossCall: callee qualifier as written.
  bool CalleeMember = false;
  unsigned Line = 0;
  unsigned Col = 0;
  std::string LineText; ///< Trimmed source line (baseline key).
};

/// Flow-sensitive call summary for the thread-reachability walk: where
/// the simple CallSite records the brace-scoped held set, a FlowCall
/// records the dataflow must-held verdict plus whether the receiver is a
/// function-local object (writes behind it are task-local, not shared).
struct FlowCall {
  std::string Name;
  std::string Qualifier;
  bool IsMember = false;
  bool LocalRecv = false; ///< Receiver chain base is a local/param.
  bool LockFree = false;  ///< Must-held lock set empty at the site.
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Everything phase 2 needs to know about one function definition.
struct FunctionInfo {
  std::string Qual;  ///< Fully qualified name, no signature: overloads
                     ///< collapse onto one graph node.
  std::string Name;  ///< Last component of Qual.
  std::string Class; ///< Enclosing class name, empty for free functions.
  unsigned Line = 0;
  unsigned Col = 0;
  std::string LineText; ///< Trimmed definition line (baseline key).
  bool HasSource = false; ///< Any direct entropy/wall-clock source.
  /// True for a lambda handed to a ThreadPool-style spawn call
  /// (parallelFor/submit/...): it runs on another thread, so its entry
  /// lock set is empty regardless of what the spawner held.
  bool IsThreadBody = false;
  std::vector<CallSite> Calls;
  std::vector<AllocSite> Allocs;
  std::vector<LockAcq> Acquires;
  std::vector<LockEdge> LockEdges;
  std::vector<TaintFlow> Flows;
  std::vector<SinkUse> Sinks;
  /// Quals of the task-lambda bodies this function spawns; the linker
  /// adds explicit caller→lambda edges for them (name resolution cannot).
  std::vector<std::string> SpawnedBodies;
  std::vector<UnguardedWrite> Writes;
  std::vector<RetentionSite> Retentions;
  std::vector<FlowCall> FlowCalls;
  /// Normalized arena ids this function calls .reset() on directly.
  std::vector<std::string> ResetArenas;
};

/// The phase-1 product for one file.
struct FileIndex {
  std::string Path; ///< Reported (root-stripped) path.
  FileKind Kind = FileKind::Other;
  std::vector<FunctionInfo> Functions;
  /// Instance fields and file-scope globals declared in this file.
  std::vector<FieldDecl> Fields;
  /// Allow-annotation coverage, fully expanded over statement extents
  /// (`line -> rules`), so phase 2 can honour annotations without the
  /// source text.
  std::map<unsigned, std::set<std::string>> AllowLines;
};

/// Indexes \p Source. Never fails; unparseable regions contribute no
/// symbols.
FileIndex buildFileIndex(const std::string &Path, const std::string &Source,
                         FileKind Kind);
FileIndex buildFileIndex(const std::string &Path, const std::string &Source);

/// Cache serialization: a stable, escaped line-based form. deserialize
/// returns false on any malformed input (the entry is then re-indexed).
std::string serializeFileIndex(const FileIndex &Index);
bool deserializeFileIndex(const std::string &Data, size_t &Pos,
                          FileIndex &Out);

} // namespace medley::lint

#endif // MEDLEY_TOOLS_LINT_INDEX_H
