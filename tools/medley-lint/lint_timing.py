#!/usr/bin/env python3
"""Time medley-lint cold vs warm and emit a bench-compare JSON.

Runs the analyzer over the given trees twice per sample: once with a
fresh cache file (cold: full lex + index + dataflow on every file) and
once against the cache the cold run just wrote (warm: every unchanged
file served from the cache, phase 2 re-linked from cached summaries).
Each mode keeps the best of ``--repeat`` samples to soak scheduler
noise, then the script:

  * writes ``--out`` (BENCH_lint.json) with ``lint_cold_seconds`` /
    ``lint_warm_seconds`` — the ``seconds`` suffix makes both keys gate
    under tools/bench-compare/bench_compare.py; and
  * fails (exit 1) when the warm run is not at least ``--min-speedup``
    times faster than the cold run, which keeps the incremental cache
    honest independently of the checked-in absolute baselines.

Usage:
    lint_timing.py --bin medley-lint --root REPO --out BENCH_lint.json \
        [--repeat 5] [--min-speedup 2.0] TREE...
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time


def run_once(args, cache):
    cmd = [args.bin, "--root", args.root, "--cache", cache] + args.trees
    start = time.perf_counter()
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.STDOUT)
    elapsed = time.perf_counter() - start
    # 0 = clean, 1 = findings: both are successful analysis runs as far
    # as timing goes. Anything else is a usage/IO failure.
    if proc.returncode not in (0, 1):
        sys.exit(f"lint_timing: {' '.join(cmd)} exited {proc.returncode}")
    return elapsed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", required=True, help="medley-lint binary")
    parser.add_argument("--root", required=True, help="repo root (--root)")
    parser.add_argument("--out", required=True, help="BENCH_lint.json path")
    parser.add_argument("--repeat", type=int, default=5,
                        help="samples per mode; the best is reported")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required cold/warm ratio")
    parser.add_argument("trees", nargs="+", help="trees to lint")
    args = parser.parse_args()

    scratch = tempfile.mkdtemp(prefix="medley_lint_timing_")
    cache = os.path.join(scratch, "cache.txt")
    try:
        cold = warm = None
        for _ in range(max(1, args.repeat)):
            if os.path.exists(cache):
                os.remove(cache)
            cold_s = run_once(args, cache)
            warm_s = run_once(args, cache)
            cold = cold_s if cold is None else min(cold, cold_s)
            warm = warm_s if warm is None else min(warm, warm_s)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    speedup = cold / warm if warm > 0 else float("inf")
    report = {
        "bench": "lint_timing",
        "trees": args.trees,
        "cold": {"lint_cold_seconds": round(cold, 4)},
        "warm": {"lint_warm_seconds": round(warm, 4)},
        "warm_speedup": round(speedup, 2),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"lint_timing: cold {cold:.3f}s  warm {warm:.3f}s  "
          f"speedup {speedup:.2f}x")

    if speedup < args.min_speedup:
        print(f"lint_timing: FAIL warm speedup {speedup:.2f}x < "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
