#!/bin/sh
# Configure, build and run the test suite under each sanitizer in a
# sibling build tree (build-asan/, build-ubsan/, build-tsan/). Driven by
# `make sanitize-matrix`; also runnable directly. Pass ctest arguments
# after `--` to narrow the run, e.g.
#
#   tools/sanitize-matrix.sh -- -L chaos
#
# runs only the chaos suite under all three sanitizers.
set -eu

SRC=$(
  cd "$(dirname "$0")/.."
  pwd
)

CTEST_ARGS=""
if [ "${1:-}" = "--" ]; then
  shift
  CTEST_ARGS="$*"
fi

JOBS=$(nproc 2>/dev/null || echo 4)

for ENTRY in address:build-asan undefined:build-ubsan thread:build-tsan; do
  SAN=${ENTRY%%:*}
  DIR=$SRC/${ENTRY#*:}
  echo "== sanitize-matrix: $SAN ($DIR) =="
  cmake -S "$SRC" -B "$DIR" -DMEDLEY_SANITIZE="$SAN" >/dev/null
  cmake --build "$DIR" -j "$JOBS"
  if [ -n "$CTEST_ARGS" ]; then
    # shellcheck disable=SC2086 # CTEST_ARGS is intentionally word-split.
    (cd "$DIR" && ctest --output-on-failure -j "$JOBS" $CTEST_ARGS)
  else
    # Default run: the unit/chaos suites (which include the columnar trace
    # and arena TUs) first, then the bench-smoke figure paths as their own
    # leg so the trace writer/reader and arena hot paths see real workloads
    # under each sanitizer.
    (cd "$DIR" && ctest --output-on-failure -j "$JOBS" -LE bench-smoke)
    (cd "$DIR" && ctest --output-on-failure -L bench-smoke)
    # Fleet smoke leg: the sharded engine's phase barriers and mailbox
    # columns are exactly the protocol TSan exists to check. The fleet
    # suite already ran above under the chaos label; running it once
    # more by name means a label reshuffle can never silently drop it
    # from the matrix.
    (cd "$DIR" && ctest --output-on-failure -R "Fleet|LatencyHistogram")
  fi
done

echo "== sanitize-matrix: all sanitizers passed =="
